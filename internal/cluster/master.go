package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fchain/internal/core"
	"fchain/internal/depgraph"
	"fchain/internal/obs"
)

// Master is the FChain master daemon: it accepts slave registrations and,
// when a performance anomaly is detected, fans an analyze request out to
// every slave and runs the integrated diagnosis over their reports.
//
// The master is built for the degraded conditions it diagnoses: it probes
// registered slaves with periodic heartbeats and evicts dead connections, a
// per-slave circuit breaker stops analyze fan-out from burning its deadline
// on slaves that keep failing, duplicate registrations replace (and close)
// the stale connection, and Localize retries unanswered slaves within its
// deadline before reporting how much of the application its diagnosis saw.
type Master struct {
	cfg  core.Config
	deps *depgraph.Graph
	obs  *obs.Sink

	ln net.Listener

	hbInterval  time.Duration
	hbMaxMisses int
	retries     int
	localizeTO  time.Duration
	brThreshold int
	brCooldown  time.Duration

	quorum        float64
	admit         *gate
	slaveInflight int

	// Sharded mode (shard.go): vnodes > 0 places every known component on a
	// consistent-hash ring over the registered slaves, and membership
	// changes trigger incremental rebalancing with checkpoint handoffs.
	shardVnodes    int
	handoffTimeout time.Duration
	handoffRetries int
	autoRebalance  bool

	rebalanceMu  sync.Mutex    // serializes rebalance passes
	rebalanceReq chan struct{} // buffered(1) trigger for the auto-rebalance loop
	handoffHook  atomic.Pointer[func(comp, from, to string)]

	// Warm-standby replication (standbyOn): every component gets a standby
	// owner next to its primary on the ring, primaries ship state deltas
	// upstream, and the master relays each to the standby. replSent/replAcked
	// track the per-component sequence numbers relayed and acked — a
	// component is warm-promotable only while the two match — and replTickAt
	// records each slave's last clean replication tick, bounding how stale
	// its standbys can be (replMaxLag; 0 = no bound). replMu is never held
	// together with mu.
	standbyOn  bool
	replMaxLag time.Duration
	replMu     sync.Mutex
	standbyOf  map[string]string
	replSent   map[string]uint64
	replAcked  map[string]uint64
	replTickAt map[string]time.Time

	reqCounter atomic.Uint64

	mu      sync.Mutex
	slaves  map[string]*slaveConn
	aggs    map[string]*slaveConn // registered aggregators by name
	known   map[string]bool       // every component ever registered
	owner   map[string]string     // sharded mode: component -> owning slave
	evicted map[string]bool       // slaves lost since their last registration
	closed  bool
	history []DiagnosisRecord
	svc     *Service // service-mode intake; nil until a Service attaches
	stop    chan struct{}

	wg sync.WaitGroup
}

// MasterOption configures a Master.
type MasterOption func(*Master)

// WithHeartbeat enables periodic liveness probing: every interval the master
// pings each registered slave; a slave missing maxMisses consecutive pongs
// is evicted (its connection closed, pending requests failed). interval <= 0
// disables probing.
func WithHeartbeat(interval time.Duration, maxMisses int) MasterOption {
	return func(m *Master) {
		m.hbInterval = interval
		if maxMisses > 0 {
			m.hbMaxMisses = maxMisses
		}
	}
}

// WithLocalizeRetries sets how many extra attempts Localize spends per
// unanswered slave inside its deadline (default 1).
func WithLocalizeRetries(n int) MasterOption {
	return func(m *Master) {
		if n >= 0 {
			m.retries = n
		}
	}
}

// WithLocalizeTimeout sets the overall Localize deadline applied when the
// caller's context has none (default 30s).
func WithLocalizeTimeout(d time.Duration) MasterOption {
	return func(m *Master) {
		if d > 0 {
			m.localizeTO = d
		}
	}
}

// WithBreaker tunes the per-slave circuit breaker: after threshold
// consecutive analyze failures the slave is skipped until cooldown elapses
// (threshold <= 0 disables the breaker).
func WithBreaker(threshold int, cooldown time.Duration) MasterOption {
	return func(m *Master) {
		m.brThreshold = threshold
		if cooldown > 0 {
			m.brCooldown = cooldown
		}
	}
}

// quorumGraceCap bounds how long Localize keeps collecting stragglers after
// the quorum is met: a quarter of the remaining deadline, at most this.
const quorumGraceCap = 500 * time.Millisecond

// WithQuorum sets the slave answer quorum as a fraction in (0, 1]: Localize
// diagnoses once ceil(frac * slaves) slaves have answered plus a short
// straggler grace (min(remaining/4, quorumGraceCap); see the collect loop),
// attributing whatever is still missing in Coverage/Degraded, and refuses
// with ErrQuorumNotMet when fewer answer before the deadline. frac <= 0
// (the default) disables both behaviors: Localize waits for every slave
// within its deadline and diagnoses best-effort over whatever arrived.
func WithQuorum(frac float64) MasterOption {
	return func(m *Master) {
		if frac > 1 {
			frac = 1
		}
		m.quorum = frac
	}
}

// WithAdmission bounds concurrent Localize calls: at most limit run at
// once, at most queue more wait (LIFO, newest first — the freshest deadline
// wins; an overflowing queue sheds its oldest waiter). Shed calls return
// ErrOverloaded immediately with Overloaded set on the result. limit <= 0
// (the default) admits everything.
func WithAdmission(limit, queue int) MasterOption {
	return func(m *Master) { m.admit = newGate(limit, queue) }
}

// WithSlaveInflight caps concurrent analyze requests outstanding to any one
// slave across overlapping Localize calls (default 8). A slave at its cap
// fails fast for the extra caller instead of queueing blind. n <= 0 removes
// the cap.
func WithSlaveInflight(n int) MasterOption {
	return func(m *Master) { m.slaveInflight = n }
}

// WithMasterObs attaches an observability sink: every Localize records a
// pipeline trace (attached to the result and retained in the sink's trace
// ring), counters and latency histograms land in the sink's registry, events
// in its journal, and lifecycle transitions in its logger. All sink
// components are optional; a nil sink (the default) disables everything.
func WithMasterObs(sink *obs.Sink) MasterOption {
	return func(m *Master) { m.obs = sink }
}

// WithSharding enables sharded placement: every known component is assigned
// to exactly one slave by a consistent-hash ring with vnodes virtual nodes
// per member (vnodes <= 0 selects DefaultVnodes), membership changes trigger
// incremental rebalancing with checkpoint handoffs (see shard.go), and
// Localize counts only each component's owner's report.
func WithSharding(vnodes int) MasterOption {
	return func(m *Master) {
		if vnodes <= 0 {
			vnodes = DefaultVnodes
		}
		m.shardVnodes = vnodes
	}
}

// WithHandoffTimeout bounds each step of a model handoff (export, restore,
// assign ack) during rebalancing (default 5s).
func WithHandoffTimeout(d time.Duration) MasterOption {
	return func(m *Master) {
		if d > 0 {
			m.handoffTimeout = d
		}
	}
}

// WithHandoffRetries sets how many extra attempts a failed handoff gets
// before the recipient cold-starts the component (default 2).
func WithHandoffRetries(n int) MasterOption {
	return func(m *Master) {
		if n >= 0 {
			m.handoffRetries = n
		}
	}
}

// WithStandby gives every placed component a warm standby owner (sharded
// mode only): rebalancing assigns each component a second, distinct slave on
// the ring, slaves replicate state deltas to it through the master (see
// WithReplication on the slave), and when the primary dies or is evicted the
// rebalance promotes the standby's shadow monitor in place — no checkpoint
// read, no handoff round-trip — falling back to the cold-start path only
// when the standby is gone, behind on acks, or past the lag bound.
func WithStandby(on bool) MasterOption {
	return func(m *Master) { m.standbyOn = on }
}

// WithReplMaxLag bounds how stale a standby may be and still be promoted
// warm: promotion requires the dead primary's last clean replication tick to
// be at most d old. d <= 0 (the default) disables the bound — promotion then
// only requires every relayed frame to be acked.
func WithReplMaxLag(d time.Duration) MasterOption {
	return func(m *Master) {
		if d > 0 {
			m.replMaxLag = d
		}
	}
}

// WithAutoRebalance controls whether membership changes trigger rebalancing
// automatically (the default). Disabled, placement changes only when the
// caller invokes Rebalance — tests use this to make move windows
// deterministic.
func WithAutoRebalance(on bool) MasterOption {
	return func(m *Master) { m.autoRebalance = on }
}

// slaveConn is the master-side state of one registered peer (a slave or an
// aggregator — both speak the same correlated request/response protocol).
type slaveConn struct {
	name       string
	components []string
	via        string // aggregator this slave also answers through ("" = direct only)
	w          *connWriter

	// replQ carries this slave's inbound replicate frames to a dedicated
	// drainer goroutine: relaying blocks on the standby's ack, so it cannot
	// run on the reader (pings would starve), and per-frame goroutines would
	// lose the per-component ordering the delta replay depends on. Nil for
	// aggregators. The reader is the only sender and closes it on exit.
	replQ chan *envelope

	mu       sync.Mutex
	pending  map[uint64]chan *envelope
	dead     bool // connection gone; no retries will succeed
	misses   int  // consecutive heartbeat misses
	failures int  // consecutive analyze failures (breaker input)
	openedAt time.Time
	open     bool // breaker open
	inflight int  // analyze requests currently outstanding to this slave
}

// acquireSlot claims one of the slave's in-flight analyze slots; max <= 0
// means unlimited.
func (sc *slaveConn) acquireSlot(max int) bool {
	if max <= 0 {
		return true
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.inflight >= max {
		return false
	}
	sc.inflight++
	return true
}

func (sc *slaveConn) releaseSlot(max int) {
	if max <= 0 {
		return
	}
	sc.mu.Lock()
	if sc.inflight > 0 {
		sc.inflight--
	}
	sc.mu.Unlock()
}

// addPending registers a response channel for request id; it returns false
// if the connection is already dead.
func (sc *slaveConn) addPending(id uint64, ch chan *envelope) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.dead {
		return false
	}
	sc.pending[id] = ch
	return true
}

func (sc *slaveConn) removePending(id uint64) {
	sc.mu.Lock()
	delete(sc.pending, id)
	sc.mu.Unlock()
}

// takePending resolves a response channel for id, if any.
func (sc *slaveConn) takePending(id uint64) (chan *envelope, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	ch, ok := sc.pending[id]
	if ok {
		delete(sc.pending, id)
	}
	return ch, ok
}

// failAll marks the connection dead and fails every in-flight request so
// waiting Localize goroutines return immediately instead of burning their
// full timeout.
func (sc *slaveConn) failAll(reason string) {
	sc.mu.Lock()
	pending := sc.pending
	sc.pending = make(map[uint64]chan *envelope)
	sc.dead = true
	sc.mu.Unlock()
	for _, ch := range pending {
		ch <- &envelope{Type: typeError, Err: reason}
	}
}

// isDead reports whether the connection has been torn down.
func (sc *slaveConn) isDead() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.dead
}

// breakerOpen reports whether analyze fan-out should skip this slave; an
// open breaker half-opens (admits one probe attempt) after cooldown.
func (sc *slaveConn) breakerOpen(cooldown time.Duration) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if !sc.open {
		return false
	}
	if time.Since(sc.openedAt) >= cooldown {
		sc.open = false // half-open: let the next attempt probe it
		return false
	}
	return true
}

// recordResult feeds the breaker with an analyze outcome.
func (sc *slaveConn) recordResult(ok bool, threshold int) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if ok {
		sc.failures = 0
		sc.open = false
		return
	}
	sc.failures++
	if threshold > 0 && sc.failures >= threshold && !sc.open {
		sc.open = true
		sc.openedAt = time.Now()
	}
}

// NewMaster creates a master with the given FChain configuration and
// (possibly empty) dependency graph from offline discovery.
func NewMaster(cfg core.Config, deps *depgraph.Graph, opts ...MasterOption) *Master {
	m := &Master{
		cfg:           cfg,
		deps:          deps,
		hbMaxMisses:   3,
		retries:       1,
		localizeTO:    30 * time.Second,
		brThreshold:   3,
		brCooldown:    10 * time.Second,
		slaveInflight: 8,

		handoffTimeout: 5 * time.Second,
		handoffRetries: 2,
		autoRebalance:  true,
		rebalanceReq:   make(chan struct{}, 1),

		slaves:  make(map[string]*slaveConn),
		aggs:    make(map[string]*slaveConn),
		evicted: make(map[string]bool),
		known:   make(map[string]bool),
		owner:   make(map[string]string),
		stop:    make(chan struct{}),

		standbyOf:  make(map[string]string),
		replSent:   make(map[string]uint64),
		replAcked:  make(map[string]uint64),
		replTickAt: make(map[string]time.Time),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Start begins listening on addr (e.g. "127.0.0.1:0"). It returns once the
// listener is ready; connections are served in the background.
func (m *Master) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: master listen: %w", err)
	}
	m.Serve(ln)
	return nil
}

// Serve starts the master on an already-created listener (chaos tests
// inject fault-wrapped listeners this way).
func (m *Master) Serve(ln net.Listener) {
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop()
	if m.hbInterval > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
	if m.sharded() && m.autoRebalance {
		m.wg.Add(1)
		go m.rebalanceLoop()
	}
}

// Addr returns the listening address, valid after Start.
func (m *Master) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					m.obs.Logger().Error("slave connection handler panicked", "panic", fmt.Sprint(r))
					m.obs.Registry().Counter("fchain_conn_panics_total", "Recovered connection handler panics.").Inc()
					_ = conn.Close()
				}
			}()
			m.serveConn(conn)
		}()
	}
}

// serveConn handles one peer connection. A slave opens with a register
// frame and is served analyze responses; a violation client opens with a
// violate frame and is served verdicts (service mode).
func (m *Master) serveConn(conn net.Conn) {
	defer conn.Close()
	r := newReader(conn)
	env, err := readFrame(r)
	if err != nil {
		return
	}
	if env.Type == typeViolate {
		m.serveViolationConn(conn, r, env)
		return
	}
	if env.Type != typeRegister || env.Slave == "" {
		return // malformed or impatient peer; drop it
	}
	if env.Role == roleAggregator {
		m.serveAggregator(conn, r, env)
		return
	}
	sc := &slaveConn{
		name:       env.Slave,
		components: append([]string(nil), env.Components...),
		via:        env.Via,
		w:          newConnWriter(conn),
		pending:    make(map[uint64]chan *envelope),
		replQ:      make(chan *envelope, replQueueDepth),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	// A duplicate registration (typically a reconnecting slave whose old
	// connection has not yet died) replaces the stale connection: close it
	// and fail its in-flight requests so nothing leaks.
	if old := m.slaves[sc.name]; old != nil {
		_ = old.w.conn.Close()
		defer old.failAll(fmt.Sprintf("slave %s re-registered", sc.name))
	}
	m.slaves[sc.name] = sc
	delete(m.evicted, sc.name)
	for _, comp := range sc.components {
		m.known[comp] = true
	}
	registered := len(m.slaves)
	var owned []string
	if m.sharded() {
		// The rejoining slave follows the current placement until the
		// rebalance triggered below moves anything; pushing its owned set
		// immediately re-creates its monitors (restoring from shared
		// checkpoints where available) so it answers the next Localize.
		for comp, own := range m.owner {
			if own == sc.name {
				owned = append(owned, comp)
			}
		}
		sort.Strings(owned)
	}
	m.mu.Unlock()
	m.obs.Logger().Info("slave registered", "slave", sc.name, "components", len(sc.components), "via", sc.via)
	m.obs.Registry().Gauge("fchain_slaves_registered", "Currently registered slaves.").Set(float64(registered))
	_ = m.obs.EventJournal().Record("slave_registered", map[string]any{"slave": sc.name, "components": sc.components})
	if m.sharded() {
		m.obs.Registry().Gauge("fchain_cluster_members", "Slaves on the placement ring.").Set(float64(registered))
		_ = m.obs.EventJournal().Record("member_joined", map[string]any{"slave": sc.name})
		var shadow []string
		if m.standbyOn {
			m.replMu.Lock()
			for comp, st := range m.standbyOf {
				if st == sc.name {
					shadow = append(shadow, comp)
				}
			}
			m.replMu.Unlock()
			sort.Strings(shadow)
		}
		if owned != nil || shadow != nil {
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				// ReplReset covers everything owned: a reconnecting slave may
				// hold floors from before the outage while its components'
				// standbys moved, so it re-ships full state once.
				_, _ = m.call(sc, &envelope{Type: typeAssign, Components: owned, Shadow: shadow, ReplReset: owned}, m.handoffTimeout)
			}()
		}
		m.triggerRebalance()
	}
	defer func() {
		m.mu.Lock()
		if m.slaves[sc.name] == sc {
			delete(m.slaves, sc.name)
			if !m.closed {
				m.evicted[sc.name] = true
			}
		}
		remaining := len(m.slaves)
		closed := m.closed
		m.mu.Unlock()
		m.obs.Logger().Warn("slave disconnected", "slave", sc.name)
		m.obs.Registry().Gauge("fchain_slaves_registered", "Currently registered slaves.").Set(float64(remaining))
		_ = m.obs.EventJournal().Record("slave_disconnected", map[string]any{"slave": sc.name})
		if m.sharded() && !closed {
			m.obs.Registry().Gauge("fchain_cluster_members", "Slaves on the placement ring.").Set(float64(remaining))
			_ = m.obs.EventJournal().Record("member_evicted", map[string]any{"slave": sc.name})
			m.triggerRebalance()
		}
		sc.failAll(fmt.Sprintf("slave %s disconnected", sc.name))
	}()

	m.wg.Add(1)
	go m.drainReplicate(sc)
	m.servePeerFrames(r, sc)
	close(sc.replQ) // the reader above is the only sender
}

// servePeerFrames routes a registered peer's inbound frames until the
// connection dies: responses (reports, errors, pongs, handoff state and
// acks) resolve their pending request; pings are answered in place.
func (m *Master) servePeerFrames(r *bufio.Reader, sc *slaveConn) {
	for {
		env, err := readFrame(r)
		if err != nil {
			return
		}
		switch env.Type {
		case typeReports, typeError, typePong, typeState, typeAck:
			if ch, ok := sc.takePending(env.ID); ok {
				ch <- env
			}
		case typeReplicate:
			if sc.replQ == nil {
				break // aggregators do not replicate
			}
			select {
			case sc.replQ <- env:
			default:
				// Overflow: NAK instead of blocking the reader; the primary
				// recovers with a full resend on a later tick.
				_ = sc.w.write(&envelope{Type: typeError, ID: env.ID, Component: env.Component,
					Code: codeReplFull, Err: "cluster: replication relay queue full"}, 5*time.Second)
			}
		case typePing:
			_ = sc.w.write(&envelope{Type: typePong, ID: env.ID}, 5*time.Second)
		}
	}
}

// replQueueDepth bounds a slave's queued replicate frames awaiting relay. A
// full 10k-component sync at one frame per component fits with headroom;
// overflow NAKs rather than blocks.
const replQueueDepth = 16384

// drainReplicate relays one slave's replicate frames in arrival order until
// its connection dies. Ordering matters: an incremental delta only applies
// on top of the exact state the previous frame left behind.
func (m *Master) drainReplicate(sc *slaveConn) {
	defer m.wg.Done()
	for env := range sc.replQ {
		m.relayReplicate(sc, env)
	}
}

// relayReplicate forwards one replication frame from its primary to the
// component's standby and reports the outcome back to the primary: an ack
// advances the primary's floors (already advanced optimistically) and the
// master's acked sequence, a codeReplFull error makes the primary resend the
// full snapshot. A frame with no live standby to receive it is acked without
// advancing the acked sequence, so the component simply stays cold for
// promotion purposes until a standby catches up. A clean-tick marker (empty
// Component) timestamps the slave's replication round for the lag bound.
func (m *Master) relayReplicate(primary *slaveConn, env *envelope) {
	if env.Component == "" {
		now := time.Now()
		m.replMu.Lock()
		prev := m.replTickAt[primary.name]
		m.replTickAt[primary.name] = now
		m.replMu.Unlock()
		lag := time.Duration(0)
		if !prev.IsZero() {
			lag = now.Sub(prev)
		}
		m.obs.Registry().GaugeWith("fchain_repl_lag_seconds",
			"Seconds between a slave's consecutive clean replication ticks, sampled at each tick.",
			map[string]string{"slave": primary.name}).Set(lag.Seconds())
		_ = m.obs.EventJournal().Record("repl_tick", map[string]any{
			"slave": primary.name, "lag_seconds": lag.Seconds()})
		_ = primary.w.write(&envelope{Type: typeAck, ID: env.ID}, 5*time.Second)
		return
	}
	comp := env.Component
	m.replMu.Lock()
	if env.Seq > m.replSent[comp] {
		m.replSent[comp] = env.Seq
	}
	st := m.standbyOf[comp]
	m.replMu.Unlock()
	if !m.standbyOn {
		// Replication without standby placement configured: ack so the
		// primary does not resend forever; nothing will ever consume these.
		_ = primary.w.write(&envelope{Type: typeAck, ID: env.ID, Component: comp, Seq: env.Seq}, 5*time.Second)
		return
	}
	var stConn *slaveConn
	if st != "" && st != primary.name {
		m.mu.Lock()
		stConn = m.slaves[st]
		m.mu.Unlock()
	}
	if stConn == nil || stConn.isDead() {
		// A standby is expected but unreachable (not yet placed, or down).
		// NAK so the primary keeps offering the full snapshot: that is what
		// lets a late-assigned or recovered standby warm up even when no new
		// samples arrive to trigger further deltas.
		_ = primary.w.write(&envelope{Type: typeError, ID: env.ID, Component: comp, Code: codeReplFull,
			Err: fmt.Sprintf("cluster: no live standby for %q", comp)}, 5*time.Second)
		return
	}
	m.obs.Registry().Counter("fchain_repl_bytes_total",
		"Replication delta bytes relayed to standbys.").Add(int64(len(env.State)))
	_ = m.obs.EventJournal().Record("repl_relay", map[string]any{
		"component": comp, "from": primary.name, "to": st, "seq": env.Seq, "bytes": len(env.State)})
	if _, err := m.call(stConn, &envelope{Type: typeReplicate, Component: comp, Seq: env.Seq, State: env.State}, m.handoffTimeout); err != nil {
		_ = primary.w.write(&envelope{Type: typeError, ID: env.ID, Component: comp, Code: codeReplFull,
			Err: fmt.Sprintf("cluster: relay to standby %s: %v", st, err)}, 5*time.Second)
		return
	}
	m.replMu.Lock()
	if env.Seq > m.replAcked[comp] {
		m.replAcked[comp] = env.Seq
	}
	m.replMu.Unlock()
	_ = primary.w.write(&envelope{Type: typeAck, ID: env.ID, Component: comp, Seq: env.Seq}, 5*time.Second)
}

// Standby returns the slave currently standing by for comp; ok is false when
// comp has no standby (standby mode off, fewer than two slaves, or no
// rebalance has placed it yet).
func (m *Master) Standby(comp string) (standby string, ok bool) {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	standby, ok = m.standbyOf[comp]
	return standby, ok
}

// StandbyCaughtUp reports whether comp's standby has acked every replication
// frame relayed so far (at least one): the condition under which a dead
// primary's component is promoted warm.
func (m *Master) StandbyCaughtUp(comp string) bool {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	return m.replSent[comp] > 0 && m.replAcked[comp] == m.replSent[comp]
}

// serveAggregator handles one aggregator's upstream connection: it registers
// into the aggregator tier (not the slave set — aggregators own no
// components and do not count toward quorum) and is served like any other
// correlated-request peer.
func (m *Master) serveAggregator(conn net.Conn, r *bufio.Reader, env *envelope) {
	sc := &slaveConn{
		name:    env.Slave,
		w:       newConnWriter(conn),
		pending: make(map[uint64]chan *envelope),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if old := m.aggs[sc.name]; old != nil {
		_ = old.w.conn.Close()
		defer old.failAll(fmt.Sprintf("aggregator %s re-registered", sc.name))
	}
	m.aggs[sc.name] = sc
	registered := len(m.aggs)
	m.mu.Unlock()
	m.obs.Logger().Info("aggregator registered", "aggregator", sc.name)
	m.obs.Registry().Gauge("fchain_aggregators_registered", "Currently registered aggregators.").Set(float64(registered))
	_ = m.obs.EventJournal().Record("aggregator_registered", map[string]any{"aggregator": sc.name})
	defer func() {
		m.mu.Lock()
		if m.aggs[sc.name] == sc {
			delete(m.aggs, sc.name)
		}
		remaining := len(m.aggs)
		m.mu.Unlock()
		m.obs.Logger().Warn("aggregator disconnected", "aggregator", sc.name)
		m.obs.Registry().Gauge("fchain_aggregators_registered", "Currently registered aggregators.").Set(float64(remaining))
		_ = m.obs.EventJournal().Record("aggregator_disconnected", map[string]any{"aggregator": sc.name})
		sc.failAll(fmt.Sprintf("aggregator %s disconnected", sc.name))
	}()
	m.servePeerFrames(r, sc)
}

// heartbeatLoop probes every registered slave each interval and evicts the
// ones that keep missing pongs.
func (m *Master) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		conns := make([]*slaveConn, 0, len(m.slaves)+len(m.aggs))
		for _, sc := range m.slaves {
			conns = append(conns, sc)
		}
		for _, sc := range m.aggs {
			conns = append(conns, sc)
		}
		m.mu.Unlock()
		var wg sync.WaitGroup
		for _, sc := range conns {
			wg.Add(1)
			go func(sc *slaveConn) {
				defer wg.Done()
				m.probe(sc)
			}(sc)
		}
		wg.Wait()
	}
}

// probe sends one ping and records a miss if the pong does not arrive within
// the heartbeat interval; maxMisses consecutive misses evict the slave.
func (m *Master) probe(sc *slaveConn) {
	id := m.reqCounter.Add(1)
	ch := make(chan *envelope, 1)
	if !sc.addPending(id, ch) {
		return
	}
	if err := sc.w.write(&envelope{Type: typePing, ID: id}, m.hbInterval); err != nil {
		sc.removePending(id)
		m.miss(sc)
		return
	}
	select {
	case <-ch:
		sc.mu.Lock()
		sc.misses = 0
		sc.mu.Unlock()
	case <-time.After(m.hbInterval):
		sc.removePending(id)
		m.miss(sc)
	case <-m.stop:
		sc.removePending(id)
	}
}

func (m *Master) miss(sc *slaveConn) {
	sc.mu.Lock()
	sc.misses++
	misses := sc.misses
	evict := sc.misses >= m.hbMaxMisses
	sc.mu.Unlock()
	m.obs.Logger().Debug("heartbeat miss", "slave", sc.name, "misses", misses)
	if evict {
		m.obs.Logger().Warn("evicting slave after missed heartbeats", "slave", sc.name, "misses", misses)
		m.obs.Registry().Counter("fchain_slave_evictions_total", "Slaves evicted for missed heartbeats.").Inc()
		// Closing the connection makes its serveConn exit, which evicts
		// the slave and fails any in-flight requests.
		_ = sc.w.conn.Close()
	}
}

// HealthState classifies a slave's liveness as seen by the master.
type HealthState string

const (
	// Healthy: registered, no outstanding heartbeat misses, breaker closed.
	Healthy HealthState = "healthy"
	// Degraded: registered but missing heartbeats or behind an open
	// circuit breaker.
	Degraded HealthState = "degraded"
	// Dead: evicted (connection lost or heartbeat limit hit) and not yet
	// re-registered.
	Dead HealthState = "dead"
)

// SlaveHealth is one slave's liveness snapshot.
type SlaveHealth struct {
	State       HealthState `json:"state"`
	Misses      int         `json:"misses,omitempty"`       // consecutive heartbeat misses
	Failures    int         `json:"failures,omitempty"`     // consecutive analyze failures
	BreakerOpen bool        `json:"breaker_open,omitempty"` // analyze fan-out is skipping it
}

// Health returns a liveness snapshot for every slave the master has seen:
// registered slaves are healthy or degraded; slaves lost since their last
// registration are dead.
func (m *Master) Health() map[string]SlaveHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]SlaveHealth, len(m.slaves)+len(m.evicted))
	for name, sc := range m.slaves {
		sc.mu.Lock()
		h := SlaveHealth{State: Healthy, Misses: sc.misses, Failures: sc.failures, BreakerOpen: sc.open}
		sc.mu.Unlock()
		if h.Misses > 0 || h.BreakerOpen {
			h.State = Degraded
		}
		out[name] = h
	}
	for name := range m.evicted {
		out[name] = SlaveHealth{State: Dead}
	}
	return out
}

// Slaves returns the names of the registered slaves, sorted.
func (m *Master) Slaves() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.slaves))
	for name := range m.slaves {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Components returns every component monitored by a registered slave.
func (m *Master) Components() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, sc := range m.slaves {
		out = append(out, sc.components...)
	}
	sort.Strings(out)
	return out
}

// DiagnosisRecord is one past localization kept in the master's journal.
// Tenant and App are set for localizations that entered through the
// service-mode violation intake; ad-hoc Localize calls leave them empty.
type DiagnosisRecord struct {
	TV        int64          `json:"tv"`
	Tenant    string         `json:"tenant,omitempty"`
	App       string         `json:"app,omitempty"`
	Diagnosis core.Diagnosis `json:"diagnosis"`
	Degraded  bool           `json:"degraded,omitempty"`
}

// History returns the master's past localizations, oldest first (bounded to
// the most recent historyLimit entries).
func (m *Master) History() []DiagnosisRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DiagnosisRecord, len(m.history))
	copy(out, m.history)
	return out
}

// restoreHistory seeds the master's history with records rebuilt from a
// journal replay (oldest first). It prepends: localizations already run this
// process stay newest, and the combined journal is re-bounded to
// historyLimit.
func (m *Master) restoreHistory(recs []DiagnosisRecord) {
	if len(recs) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	combined := make([]DiagnosisRecord, 0, len(recs)+len(m.history))
	combined = append(combined, recs...)
	combined = append(combined, m.history...)
	if len(combined) > historyLimit {
		combined = combined[len(combined)-historyLimit:]
	}
	m.history = combined
}

// attachService registers the service-mode intake so violation connections
// are routed to it; the latest attached service wins.
func (m *Master) attachService(s *Service) {
	m.mu.Lock()
	m.svc = s
	m.mu.Unlock()
}

// service returns the attached service-mode intake, if any.
func (m *Master) service() *Service {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.svc
}

// historyLimit bounds the master's diagnosis journal.
const historyLimit = 128

// ErrNoSlaves is returned by Localize when no slave is registered.
var ErrNoSlaves = errors.New("cluster: no slaves registered")

// Localize triggers the fault localization pipeline: every registered slave
// analyzes its look-back window ending at tv and the master diagnoses the
// combined reports. Each unanswered slave is retried (fresh request, fresh
// ID) within the overall deadline — taken from ctx, or the configured
// default when ctx has none. Slaves that still fail are skipped: their
// components stay in the application size for the external-factor check
// (known from registration), and the returned LocalizeResult carries the
// resulting coverage so callers can tell a confident localization from a
// partial-view one.
func (m *Master) Localize(ctx context.Context, tv int64) (core.LocalizeResult, error) {
	return m.localize(ctx, tv, "", "")
}

// localize is Localize tagged with the service-mode tenant and app that
// triggered it (both empty for ad-hoc calls); the tags flow into the
// history record and the journal event.
func (m *Master) localize(ctx context.Context, tv int64, tenantName, app string) (core.LocalizeResult, error) {
	var res core.LocalizeResult
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.localizeTO)
		defer cancel()
	}

	// Admission first: under overload the request waits in the LIFO queue
	// (bounded by its own deadline) or is shed before any fan-out happens.
	if err := m.admit.acquire(ctx); err != nil {
		res.Overloaded = true
		m.obs.Registry().CounterWith("fchain_localize_total", "Localize calls by outcome.",
			map[string]string{"outcome": "shed"}).Inc()
		m.obs.Logger().Warn("localize shed by admission control", "tv", tv, "err", err)
		_ = m.obs.EventJournal().Record("localize_shed", map[string]any{"tv": tv})
		if errors.Is(err, ErrOverloaded) {
			// Retry-After hint: each request already queued ahead is one
			// quantum of delay; the hint never exceeds the localize deadline
			// (waiting longer than one full cycle is never necessary).
			hint := m.admit.retryAfterHint(m.localizeTO)
			res.RetryAfterMS = hint.Milliseconds()
			return res, &OverloadedError{RetryAfter: hint}
		}
		return res, err
	}
	defer m.admit.release()

	tr := obs.NewTrace("localize", tv)
	root := tr.Start(-1, "localize")
	m.mu.Lock()
	if len(m.slaves) == 0 {
		m.mu.Unlock()
		m.obs.Registry().CounterWith("fchain_localize_total", "Localize calls by outcome.",
			map[string]string{"outcome": "no_slaves"}).Inc()
		return res, ErrNoSlaves
	}
	conns := make([]*slaveConn, 0, len(m.slaves))
	for _, sc := range m.slaves {
		conns = append(conns, sc)
	}
	aggConns := make(map[string]*slaveConn, len(m.aggs))
	for name, sc := range m.aggs {
		aggConns[name] = sc
	}
	// The application's size counts every component ever registered: a
	// slave that died does not shrink the application, and the
	// external-factor check must not misread a partial view as "all
	// components abnormal".
	res.SlavesTotal = len(conns)
	res.ComponentsKnown = len(m.known)
	knownComps := make([]string, 0, len(m.known))
	for comp := range m.known {
		knownComps = append(knownComps, comp)
	}
	// Sharded mode: the placement at snapshot time decides which slave's
	// report counts for each component. A component mid-rebalance can be
	// reported by both its old and new owner for one window; filtering on
	// the owner map keeps exactly one report per component.
	var ownerOf map[string]string
	if m.sharded() && len(m.owner) > 0 {
		ownerOf = make(map[string]string, len(m.owner))
		for comp, own := range m.owner {
			ownerOf[comp] = own
		}
	}
	m.mu.Unlock()
	sort.Strings(knownComps)
	tr.AttrInt(root, "slaves", int64(res.SlavesTotal))
	tr.AttrInt(root, "components", int64(res.ComponentsKnown))

	deadline, _ := ctx.Deadline()
	attempts := m.retries + 1
	perAttempt := time.Until(deadline) / time.Duration(attempts)
	if perAttempt <= 0 {
		return res, context.DeadlineExceeded
	}

	lookBack := m.cfg.LookBack
	if lookBack <= 0 {
		lookBack = core.DefaultConfig().LookBack
	}
	// Group the fan-out into subtree units: slaves registered via a live
	// aggregator are asked through it (one analyze frame per subtree, the
	// aggregator answers with per-slave sub-entries); everything else — and
	// every member of a subtree whose aggregator fails mid-localization —
	// is asked over its always-present direct connection.
	answers := make(chan slaveAnswer, len(conns))
	var direct []*slaveConn
	units := make(map[*slaveConn][]*slaveConn)
	for _, sc := range conns {
		if sc.via != "" {
			if agg := aggConns[sc.via]; agg != nil && !agg.isDead() {
				units[agg] = append(units[agg], sc)
				continue
			}
		}
		direct = append(direct, sc)
	}
	for _, sc := range direct {
		sc := sc
		go m.askDirect(ctx, sc, tv, lookBack, attempts, perAttempt, answers)
	}
	for agg, members := range units {
		agg, members := agg, members
		go m.askSubtree(ctx, agg, members, tv, lookBack, attempts, perAttempt, answers)
	}
	// The request fans out to every slave at once, so the pool width is the
	// slave count; the select histogram records each slave's answer latency
	// (its remote selection work plus the wire).
	res.Stats.Workers = len(conns)
	res.Stats.Tasks = len(conns)

	// Collect answers until every slave responded, the quorum is met, or the
	// deadline expires. Meeting the quorum does not exit on a hair trigger:
	// the slowest healthy answer is routinely the faulty component's (an
	// abnormal series yields more change-point candidates, so its selection
	// costs the most), and dropping it on every healthy run would defeat the
	// diagnosis. Stragglers get a bounded grace after quorum; only what is
	// still missing when it lapses is charged to coverage.
	need := 0
	if m.quorum > 0 {
		need = int(math.Ceil(m.quorum * float64(len(conns))))
		if need < 1 {
			need = 1
		}
		if need > len(conns) {
			need = len(conns)
		}
	}
	collected := make([]slaveAnswer, 0, len(conns))
	answered := 0
collect:
	for len(collected) < len(conns) {
		var a slaveAnswer
		select {
		case a = <-answers:
		case <-ctx.Done():
			break collect
		}
		collected = append(collected, a)
		if a.err == nil {
			answered++
		}
		if need > 0 && answered >= need {
			grace := quorumGraceCap
			if dl, ok := ctx.Deadline(); ok {
				if rem := time.Until(dl) / 4; rem < grace {
					grace = rem
				}
			}
			if grace <= 0 {
				break collect
			}
			timer := time.NewTimer(grace)
			for len(collected) < len(conns) {
				select {
				case a := <-answers:
					collected = append(collected, a)
					if a.err == nil {
						answered++
					}
				case <-timer.C:
					break collect
				case <-ctx.Done():
					timer.Stop()
					break collect
				}
			}
			timer.Stop()
			break collect
		}
	}
	// Slaves whose answers never arrived get a deterministic error entry so
	// the result (and its trace) does not depend on goroutine timing.
	got := make(map[string]bool, len(collected))
	for _, a := range collected {
		got[a.slave] = true
	}
	for _, sc := range conns {
		if !got[sc.name] {
			collected = append(collected, slaveAnswer{slave: sc.name, err: fmt.Errorf("cluster: slave %s: deadline exceeded", sc.name)})
		}
	}
	// Sort by slave name: fan-out answers arrive in racy order, and the ask
	// spans below must be deterministic for trace-normalized goldens.
	sort.Slice(collected, func(i, j int) bool { return collected[i].slave < collected[j].slave })

	var reports []core.ComponentReport
	seen := make(map[string]bool)
	for _, a := range collected {
		res.Retries += a.retries
		ask := tr.Start(root, "ask:"+a.slave)
		tr.AttrInt(ask, "retries", int64(a.retries))
		if a.via != "" {
			tr.Attr(ask, "via", a.via)
		}
		if a.err != nil {
			tr.Attr(ask, "error", a.err.Error())
			tr.End(ask)
			m.obs.Logger().Warn("slave analyze failed", "slave", a.slave, "err", a.err)
			res.Errors = append(res.Errors, a.err.Error())
			continue
		}
		tr.AttrInt(ask, "reports", int64(len(a.reports)))
		tr.End(ask)
		res.SlavesAnswered++
		res.Stats.Select.Observe(a.waitNS)
		m.obs.Registry().Histogram("fchain_slave_answer_latency_ns",
			"Per-slave analyze answer latency (remote selection plus the wire).").Observe(a.waitNS)
		// Clock-offset normalization: the slave echoed which clock its
		// onsets are in. The propagation chain orders components by onset
		// across slaves, so per-slave offsets must be removed before
		// diagnosis or a skewed slave's component shifts within the chain.
		offset := int64(0)
		if a.usedTV != 0 {
			offset = a.usedTV - tv
		}
		if offset != 0 {
			if res.ClockOffsets == nil {
				res.ClockOffsets = make(map[string]int64)
			}
			res.ClockOffsets[a.slave] = offset
		}
		for _, rep := range a.reports {
			if own, placed := ownerOf[rep.Component]; placed && own != a.slave {
				continue // stale owner mid-rebalance; the current owner's report counts
			}
			seen[rep.Component] = true
			if offset != 0 {
				rep.Onset -= offset
				for i := range rep.Changes {
					rep.Changes[i].Onset -= offset
					rep.Changes[i].ChangeAt -= offset
				}
			}
			if rep.Quality != (core.DataQuality{}) {
				if res.Quality == nil {
					res.Quality = make(map[string]core.DataQuality)
				}
				res.Quality[rep.Component] = rep.Quality
			}
			if rep.Truncated {
				res.Truncated = true
			}
			if len(rep.Quarantined) > 0 {
				if res.Quarantined == nil {
					res.Quarantined = make(map[string][]string)
				}
				res.Quarantined[rep.Component] = rep.Quarantined
			}
			reports = append(reports, rep)
		}
	}
	res.ComponentsReported = len(seen)
	res.Degraded = res.SlavesAnswered < res.SlavesTotal || res.ComponentsReported < res.ComponentsKnown
	for _, comp := range knownComps {
		if !seen[comp] {
			res.MissingComponents = append(res.MissingComponents, comp)
		}
	}
	if need > 0 && res.SlavesAnswered < need {
		m.obs.Registry().CounterWith("fchain_localize_total", "Localize calls by outcome.",
			map[string]string{"outcome": "quorum"}).Inc()
		m.obs.Logger().Error("localize refused: quorum not met", "tv", tv,
			"answered", res.SlavesAnswered, "need", need, "total", res.SlavesTotal)
		_ = m.obs.EventJournal().Record("localize_quorum_not_met", map[string]any{
			"tv": tv, "answered": res.SlavesAnswered, "need": need, "total": res.SlavesTotal})
		return res, fmt.Errorf("%w: %d/%d slaves answered, need %d",
			ErrQuorumNotMet, res.SlavesAnswered, res.SlavesTotal, need)
	}
	if len(reports) == 0 && len(res.Errors) > 0 {
		m.obs.Registry().CounterWith("fchain_localize_total", "Localize calls by outcome.",
			map[string]string{"outcome": "error"}).Inc()
		m.obs.Logger().Error("localize failed: no slave answered", "tv", tv, "first_err", res.Errors[0])
		_ = m.obs.EventJournal().Record("localize_failed", map[string]any{"tv": tv, "errors": res.Errors})
		return res, fmt.Errorf("cluster: all slaves failed: %s", res.Errors[0])
	}
	dg := tr.Start(root, "diagnose")
	diagStart := time.Now()
	res.Diagnosis = core.Diagnose(reports, res.ComponentsKnown, m.deps, m.cfg)
	res.Stats.Diagnose.Observe(time.Since(diagStart).Nanoseconds())
	tr.AttrInt(dg, "chain", int64(len(res.Diagnosis.Chain)))
	tr.Attr(dg, "culprits", strings.Join(res.Diagnosis.CulpritNames(), ","))
	tr.AttrBool(dg, "external", res.Diagnosis.ExternalFactor)
	tr.End(dg)
	tr.Attr(root, "verdict", res.Diagnosis.String())
	tr.AttrBool(root, "degraded", res.Degraded)
	if res.Truncated {
		tr.AttrBool(root, "truncated", true)
	}
	tr.End(root)
	res.Trace = tr
	m.obs.TraceRing().Add(tr)
	m.instrumentLocalize(tv, tenantName, app, &res)
	m.mu.Lock()
	m.history = append(m.history, DiagnosisRecord{TV: tv, Tenant: tenantName, App: app, Diagnosis: res.Diagnosis, Degraded: res.Degraded})
	if len(m.history) > historyLimit {
		m.history = m.history[len(m.history)-historyLimit:]
	}
	m.mu.Unlock()
	return res, nil
}

// instrumentLocalize records one completed localization in the sink's
// metrics, journal, and log (all no-ops without a sink).
func (m *Master) instrumentLocalize(tv int64, tenantName, app string, res *core.LocalizeResult) {
	if m.obs == nil {
		return
	}
	reg := m.obs.Registry()
	reg.CounterWith("fchain_localize_total", "Localize calls by outcome.",
		map[string]string{"outcome": "ok"}).Inc()
	reg.Counter("fchain_diagnose_total", "Integrated diagnosis passes.").Inc()
	if res.Degraded {
		reg.Counter("fchain_localize_degraded_total", "Localizations over a partial view.").Inc()
	}
	sel := res.Stats.Select
	reg.Histogram("fchain_selection_latency_ns", "Abnormal change point selection latency.").
		MergeLog2(sel.Buckets[:], sel.Count, sel.SumNS, sel.MaxNS)
	diag := res.Stats.Diagnose
	reg.Histogram("fchain_diagnose_latency_ns", "Integrated diagnosis latency.").
		MergeLog2(diag.Buckets[:], diag.Count, diag.SumNS, diag.MaxNS)
	m.obs.Logger().Info("localize complete",
		"tv", tv,
		"verdict", res.Diagnosis.String(),
		"slaves", fmt.Sprintf("%d/%d", res.SlavesAnswered, res.SlavesTotal),
		"degraded", res.Degraded)
	ev := map[string]any{
		"tv":        tv,
		"culprits":  res.Diagnosis.CulpritNames(),
		"external":  res.Diagnosis.ExternalFactor,
		"chain_len": len(res.Diagnosis.Chain),
		"slaves":    res.SlavesAnswered,
		"degraded":  res.Degraded,
	}
	if tenantName != "" {
		ev["tenant"] = tenantName
		ev["app"] = app
	}
	_ = m.obs.EventJournal().Record("localize", ev)
}

// slaveAnswer is one slave's outcome inside a Localize fan-out, whether it
// arrived directly or through an aggregator (via names the aggregator then).
// Exactly one slaveAnswer per registered slave reaches the collect loop.
type slaveAnswer struct {
	slave   string
	via     string
	reports []core.ComponentReport
	usedTV  int64
	retries int
	waitNS  int64
	err     error
}

// askDirect runs one slave's direct ask — in-flight cap, circuit breaker,
// retries — and delivers exactly one slaveAnswer.
func (m *Master) askDirect(ctx context.Context, sc *slaveConn, tv int64, lookBack, attempts int, perAttempt time.Duration, answers chan<- slaveAnswer) {
	// The per-slave in-flight cap fails fast rather than queueing:
	// a slave already saturated by overlapping Localize calls would
	// only answer after this call's budget is gone anyway.
	if !sc.acquireSlot(m.slaveInflight) {
		answers <- slaveAnswer{slave: sc.name, err: fmt.Errorf("cluster: slave %s at in-flight cap", sc.name)}
		return
	}
	defer sc.releaseSlot(m.slaveInflight)
	if m.brThreshold > 0 && sc.breakerOpen(m.brCooldown) {
		answers <- slaveAnswer{slave: sc.name, err: fmt.Errorf("cluster: circuit open for slave %s", sc.name)}
		return
	}
	start := time.Now()
	a := m.askSlave(ctx, sc, tv, lookBack, attempts, perAttempt, nil)
	sc.recordResult(a.err == nil, m.brThreshold)
	answers <- slaveAnswer{slave: sc.name, reports: a.reports, usedTV: a.usedTV, retries: a.retries, waitNS: time.Since(start).Nanoseconds(), err: a.err}
}

// askSubtree asks one aggregator for its whole subtree and fans the merged
// answer back out into per-slave answers. Any member the aggregator could
// not cover — including every member when the aggregator itself dies
// mid-localization — falls back to a direct ask on the member's own
// connection, so a dead aggregator degrades the tree to the flat topology
// instead of blinding a whole subtree.
func (m *Master) askSubtree(ctx context.Context, agg *slaveConn, members []*slaveConn, tv int64, lookBack, attempts int, perAttempt time.Duration, answers chan<- slaveAnswer) {
	names := make([]string, len(members))
	for i, sc := range members {
		names[i] = sc.name
	}
	sort.Strings(names)
	start := time.Now()
	a := m.askSlave(ctx, agg, tv, lookBack, attempts, perAttempt, names)
	agg.recordResult(a.err == nil, m.brThreshold)
	elapsed := time.Since(start).Nanoseconds()
	covered := make(map[string]subAnswer, len(a.sub))
	if a.err == nil {
		for _, s := range a.sub {
			if s.Err == "" {
				covered[s.Slave] = s
			}
		}
	}
	for _, sc := range members {
		s, ok := covered[sc.name]
		if !ok {
			// Fallback budget: whatever remains of the deadline, one shot.
			go m.askDirect(ctx, sc, tv, lookBack, 1, perAttempt, answers)
			m.obs.Registry().Counter("fchain_aggregator_fallbacks_total",
				"Subtree members re-asked directly after an aggregator failure.").Inc()
			continue
		}
		wait := s.WaitNS
		if wait <= 0 {
			wait = elapsed
		}
		answers <- slaveAnswer{slave: sc.name, via: agg.name, reports: s.Reports, usedTV: s.UsedTV, retries: a.retries, waitNS: wait}
	}
}

// askResult is one peer's analyze outcome after retries.
type askResult struct {
	reports []core.ComponentReport
	sub     []subAnswer // aggregator answers: one entry per subtree slave
	usedTV  int64       // tv in the slave's clock, 0 when the slave did not echo it
	retries int
	err     error
}

// askSlave sends the analyze request and waits for the reports, retrying
// with a fresh request ID on timeout or error until the attempt budget or
// the context runs out. A dead connection stops retrying immediately. A
// non-nil subtree turns the request into an aggregator ask covering those
// slave names.
func (m *Master) askSlave(ctx context.Context, sc *slaveConn, tv int64, lookBack, attempts int, perAttempt time.Duration, subtree []string) askResult {
	var lastErr error
	used := 0
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 && (sc.isDead() || ctx.Err() != nil) {
			break
		}
		used = attempt
		// Each attempt's wait is its share of the deadline, clamped to the
		// budget actually left on the context; the slave receives that wait
		// as its analysis budget (BudgetMS) so remote selection degrades
		// instead of overshooting the master's patience.
		wait := perAttempt
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < wait {
				wait = rem
			}
		}
		if wait <= 0 {
			return askResult{retries: attempt, err: fmt.Errorf("cluster: slave %s: %w", sc.name, context.DeadlineExceeded)}
		}
		budgetMS := wait.Milliseconds()
		if budgetMS < 1 {
			budgetMS = 1 // omitempty would drop 0, reading as "no deadline"
		}
		id := m.reqCounter.Add(1)
		ch := make(chan *envelope, 1)
		if !sc.addPending(id, ch) {
			lastErr = fmt.Errorf("cluster: slave %s disconnected", sc.name)
			break
		}
		req := &envelope{Type: typeAnalyze, ID: id, TV: tv, LookBack: lookBack, BudgetMS: budgetMS, Subtree: subtree}
		if err := sc.w.write(req, wait); err != nil {
			sc.removePending(id)
			lastErr = err
			continue
		}
		select {
		case env := <-ch:
			if env.Type == typeError {
				lastErr = errors.New(env.Err)
				if env.Code == codeOverloaded {
					m.obs.Registry().Counter("fchain_slave_overloaded_total",
						"Analyze requests shed by slave admission control.").Inc()
				}
				continue
			}
			return askResult{reports: env.Reports, sub: env.Sub, usedTV: env.UsedTV, retries: attempt}
		case <-time.After(wait):
			sc.removePending(id)
			lastErr = fmt.Errorf("cluster: slave %s timed out", sc.name)
		case <-ctx.Done():
			sc.removePending(id)
			return askResult{retries: attempt, err: fmt.Errorf("cluster: slave %s: %w", sc.name, ctx.Err())}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: slave %s unavailable", sc.name)
	}
	return askResult{retries: used, err: lastErr}
}

// Close shuts the master down and waits for its goroutines.
func (m *Master) Close() error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.stop)
	}
	for _, sc := range m.slaves {
		_ = sc.w.conn.Close()
	}
	for _, sc := range m.aggs {
		_ = sc.w.conn.Close()
	}
	m.mu.Unlock()
	var err error
	if m.ln != nil {
		err = m.ln.Close()
	}
	m.wg.Wait()
	return err
}
