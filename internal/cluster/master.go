package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"fchain/internal/core"
	"fchain/internal/depgraph"
)

// Master is the FChain master daemon: it accepts slave registrations and,
// when a performance anomaly is detected, fans an analyze request out to
// every slave and runs the integrated diagnosis over their reports.
type Master struct {
	cfg  core.Config
	deps *depgraph.Graph

	ln net.Listener

	mu         sync.Mutex
	slaves     map[string]*slaveConn
	known      map[string]bool // every component ever registered
	closed     bool
	reqCounter uint64
	history    []DiagnosisRecord

	wg sync.WaitGroup
}

// slaveConn is the master-side state of one registered slave.
type slaveConn struct {
	name       string
	components []string
	conn       net.Conn

	mu      sync.Mutex
	pending map[uint64]chan *envelope
}

// NewMaster creates a master with the given FChain configuration and
// (possibly empty) dependency graph from offline discovery.
func NewMaster(cfg core.Config, deps *depgraph.Graph) *Master {
	return &Master{
		cfg:    cfg,
		deps:   deps,
		slaves: make(map[string]*slaveConn),
		known:  make(map[string]bool),
	}
}

// Start begins listening on addr (e.g. "127.0.0.1:0"). It returns once the
// listener is ready; connections are served in the background.
func (m *Master) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: master listen: %w", err)
	}
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop()
	return nil
}

// Addr returns the listening address, valid after Start.
func (m *Master) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serveConn(conn)
		}()
	}
}

// serveConn handles one slave connection: registration, then responses.
func (m *Master) serveConn(conn net.Conn) {
	defer conn.Close()
	r := newReader(conn)
	env, err := readFrame(r)
	if err != nil || env.Type != typeRegister || env.Slave == "" {
		return // malformed or impatient peer; drop it
	}
	sc := &slaveConn{
		name:       env.Slave,
		components: append([]string(nil), env.Components...),
		conn:       conn,
		pending:    make(map[uint64]chan *envelope),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.slaves[sc.name] = sc
	for _, comp := range sc.components {
		m.known[comp] = true
	}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		if m.slaves[sc.name] == sc {
			delete(m.slaves, sc.name)
		}
		m.mu.Unlock()
	}()

	for {
		env, err := readFrame(r)
		if err != nil {
			return
		}
		switch env.Type {
		case typeReports, typeError:
			sc.mu.Lock()
			ch, ok := sc.pending[env.ID]
			if ok {
				delete(sc.pending, env.ID)
			}
			sc.mu.Unlock()
			if ok {
				ch <- env
			}
		case typePing:
			_ = writeFrame(conn, &envelope{Type: typePong, ID: env.ID}, 5*time.Second)
		}
	}
}

// Slaves returns the names of the registered slaves, sorted.
func (m *Master) Slaves() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.slaves))
	for name := range m.slaves {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Components returns every component monitored by a registered slave.
func (m *Master) Components() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, sc := range m.slaves {
		out = append(out, sc.components...)
	}
	sort.Strings(out)
	return out
}

// DiagnosisRecord is one past localization kept in the master's journal.
type DiagnosisRecord struct {
	TV        int64          `json:"tv"`
	Diagnosis core.Diagnosis `json:"diagnosis"`
}

// History returns the master's past localizations, oldest first (bounded to
// the most recent historyLimit entries).
func (m *Master) History() []DiagnosisRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DiagnosisRecord, len(m.history))
	copy(out, m.history)
	return out
}

// historyLimit bounds the master's diagnosis journal.
const historyLimit = 128

// ErrNoSlaves is returned by Localize when no slave is registered.
var ErrNoSlaves = errors.New("cluster: no slaves registered")

// Localize triggers the fault localization pipeline: every registered slave
// analyzes its look-back window ending at tv and the master diagnoses the
// combined reports. Slaves that fail to answer within timeout are skipped
// (their components are still counted for the external-factor check, since
// the application size is known from registration).
func (m *Master) Localize(tv int64, timeout time.Duration) (core.Diagnosis, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	m.mu.Lock()
	if len(m.slaves) == 0 {
		m.mu.Unlock()
		return core.Diagnosis{}, ErrNoSlaves
	}
	conns := make([]*slaveConn, 0, len(m.slaves))
	for _, sc := range m.slaves {
		conns = append(conns, sc)
	}
	// The application's size counts every component ever registered: a
	// slave that died does not shrink the application, and the
	// external-factor check must not misread a partial view as "all
	// components abnormal".
	totalComponents := len(m.known)
	m.reqCounter++
	reqID := m.reqCounter
	m.mu.Unlock()

	lookBack := m.cfg.LookBack
	if lookBack <= 0 {
		lookBack = core.DefaultConfig().LookBack
	}
	type answer struct {
		reports []core.ComponentReport
		err     error
	}
	answers := make(chan answer, len(conns))
	for _, sc := range conns {
		sc := sc
		ch := make(chan *envelope, 1)
		sc.mu.Lock()
		sc.pending[reqID] = ch
		sc.mu.Unlock()
		go func() {
			req := &envelope{Type: typeAnalyze, ID: reqID, TV: tv, LookBack: lookBack}
			if err := writeFrame(sc.conn, req, timeout); err != nil {
				answers <- answer{err: err}
				return
			}
			select {
			case env := <-ch:
				if env.Type == typeError {
					answers <- answer{err: errors.New(env.Err)}
					return
				}
				answers <- answer{reports: env.Reports}
			case <-time.After(timeout):
				sc.mu.Lock()
				delete(sc.pending, reqID)
				sc.mu.Unlock()
				answers <- answer{err: fmt.Errorf("cluster: slave %s timed out", sc.name)}
			}
		}()
	}

	var reports []core.ComponentReport
	var errs []error
	for range conns {
		a := <-answers
		if a.err != nil {
			errs = append(errs, a.err)
			continue
		}
		reports = append(reports, a.reports...)
	}
	if len(reports) == 0 && len(errs) > 0 {
		return core.Diagnosis{}, fmt.Errorf("cluster: all slaves failed: %w", errs[0])
	}
	diag := core.Diagnose(reports, totalComponents, m.deps, m.cfg)
	m.mu.Lock()
	m.history = append(m.history, DiagnosisRecord{TV: tv, Diagnosis: diag})
	if len(m.history) > historyLimit {
		m.history = m.history[len(m.history)-historyLimit:]
	}
	m.mu.Unlock()
	return diag, nil
}

// Close shuts the master down and waits for its goroutines.
func (m *Master) Close() error {
	m.mu.Lock()
	m.closed = true
	for _, sc := range m.slaves {
		_ = sc.conn.Close()
	}
	m.mu.Unlock()
	var err error
	if m.ln != nil {
		err = m.ln.Close()
	}
	m.wg.Wait()
	return err
}
