package cluster

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/core"
	"fchain/internal/metric"
)

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("{not a checkpoint"), 0o644)
}

// TestSlaveRestartRestoresCheckpoints is the kill-and-restart acceptance
// path: every slave is fed the scenario, checkpointed, destroyed, and
// replaced by a fresh process-equivalent that restores purely from disk.
// The restarted cluster must localize the same culprit at the same onset as
// the uninterrupted control cluster.
func TestSlaveRestartRestoresCheckpoints(t *testing.T) {
	sim, tv, deps := faultScenario(t, 5)

	// Control: no restart.
	control, _ := startCluster(t, sim, tv, deps, nil)
	want, err := control.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if names := want.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("control diagnosis = %v, want [db]", names)
	}

	// Crash/restart run against a fresh master.
	master := NewMaster(core.Config{}, deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	ckptRoot := t.TempDir()
	var restarted []*Slave
	for _, comp := range sim.Components() {
		dir := filepath.Join(ckptRoot, comp)
		first := NewSlave("host-"+comp, []string{comp}, core.Config{}, WithCheckpointDir(dir))
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := first.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Close writes the final checkpoint; the slave is then "killed".
		if err := first.Close(); err != nil {
			t.Fatal(err)
		}

		// Restart: a brand-new slave with no samples fed, restoring models
		// and ring tails purely from the checkpoint directory.
		second := NewSlave("host-"+comp, []string{comp}, core.Config{}, WithCheckpointDir(dir))
		if got := second.RestoredComponents(); len(got) != 1 || got[0] != comp {
			t.Fatalf("slave for %s restored %v, want [%s]", comp, got, comp)
		}
		if err := second.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { second.Close() })
		restarted = append(restarted, second)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(master.Slaves()) < len(restarted) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	got, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	names := got.Diagnosis.CulpritNames()
	if len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("restarted diagnosis = %v, want [db]", names)
	}
	// Restored state is byte-equivalent to the pre-crash state, so the
	// analysis must reproduce the control onset exactly, not approximately.
	if got.Diagnosis.Culprits[0].Onset != want.Diagnosis.Culprits[0].Onset {
		t.Errorf("restarted onset = %d, control onset = %d",
			got.Diagnosis.Culprits[0].Onset, want.Diagnosis.Culprits[0].Onset)
	}
}

// TestCorruptCheckpointColdStarts verifies that an unusable checkpoint is
// skipped (cold start) instead of wedging the slave.
func TestCorruptCheckpointColdStarts(t *testing.T) {
	dir := t.TempDir()
	first := NewSlave("h", []string{apps.DB}, core.Config{}, WithCheckpointDir(dir))
	for i := int64(0); i < 50; i++ {
		if err := first.Observe(apps.DB, i, metric.CPU, 50); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the checkpoint wholesale.
	path := first.checkpointPath(apps.DB)
	if err := writeGarbage(path); err != nil {
		t.Fatal(err)
	}
	second := NewSlave("h", []string{apps.DB}, core.Config{}, WithCheckpointDir(dir))
	defer second.Close()
	if got := second.RestoredComponents(); len(got) != 0 {
		t.Errorf("corrupted checkpoint restored: %v", got)
	}
	// The cold-started slave must still accept samples and analyze.
	if err := second.Observe(apps.DB, 100, metric.CPU, 50); err != nil {
		t.Fatal(err)
	}
	second.Analyze(100)
}

// TestClockOffsetNormalization skews one slave's clock well beyond the
// concurrency threshold and verifies the master estimates the offset and
// shifts the reported onsets back to its own clock.
func TestClockOffsetNormalization(t *testing.T) {
	sim, tv, deps := faultScenario(t, 6)

	control, _ := startCluster(t, sim, tv, deps, nil)
	want, err := control.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if names := want.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("control diagnosis = %v, want [db]", names)
	}

	skewed, _ := startCluster(t, sim, tv, deps, map[string]int64{apps.DB: 4})
	got, err := skewed.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if off := got.ClockOffsets["host-"+apps.DB]; off != 4 {
		t.Errorf("clock offset for db slave = %d, want 4", off)
	}
	names := got.Diagnosis.CulpritNames()
	if len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("skewed diagnosis = %v, want [db]", names)
	}
	// After normalization the onset is back in the master's clock. The
	// shifted analysis window can move the detected change point by a
	// sample or two, so allow a small tolerance — without normalization
	// the error would be the full 4-second skew.
	diff := got.Diagnosis.Culprits[0].Onset - want.Diagnosis.Culprits[0].Onset
	if diff < -2 || diff > 2 {
		t.Errorf("normalized onset off by %d seconds (skew 4)", diff)
	}
}
