package cluster

// The aggregator tier turns the master's fan-in into a tree (master →
// aggregators → slaves): each aggregator accepts registrations from its own
// subtree of slaves, and answers the master's subtree analyze requests by
// fanning out to those slaves and merging their reports into per-slave
// sub-answers. The merge is lossless — each sub-answer carries the slave's
// own reports, clock echo, and answer latency — so the master's per-slave
// accounting (quorum, clock-offset normalization, coverage, latency
// histograms) is unchanged by the tree. Slaves keep a direct master
// connection too; an aggregator dying mid-localization only costs the master
// a fallback to direct asks.

import (
	"context"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fchain/internal/obs"
)

// Aggregator is one mid-tier fan-in node. It is addressed by name: slaves
// register with it like they register with the master, and the master routes
// a subtree analyze to it for every slave whose register frame carried
// Via=name.
type Aggregator struct {
	name   string
	quorum float64 // subtree answer quorum fraction; <= 0 waits for all

	dial           func(addr string) (net.Conn, error)
	backoffInitial time.Duration
	backoffMax     time.Duration
	obs            *obs.Sink

	ln         net.Listener
	reqCounter atomic.Uint64

	mu       sync.Mutex
	slaves   map[string]*slaveConn
	cancelUp context.CancelFunc
	upW      *connWriter
	closed   bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

// AggregatorOption configures an Aggregator.
type AggregatorOption func(*Aggregator)

// WithSubtreeQuorum sets the aggregator's subtree quorum as a fraction in
// (0, 1]: a subtree analyze answers upstream once that share of the
// requested slaves responded plus a short straggler grace, charging the rest
// as per-slave errors. frac <= 0 (the default) waits for every requested
// slave within the budget.
func WithSubtreeQuorum(frac float64) AggregatorOption {
	return func(a *Aggregator) {
		if frac > 1 {
			frac = 1
		}
		a.quorum = frac
	}
}

// WithAggregatorDialer overrides how the aggregator dials the master; chaos
// tests inject fault-wrapped connections through this.
func WithAggregatorDialer(dial func(addr string) (net.Conn, error)) AggregatorOption {
	return func(a *Aggregator) { a.dial = dial }
}

// WithAggregatorBackoff overrides the upstream reconnect backoff bounds.
func WithAggregatorBackoff(initial, max time.Duration) AggregatorOption {
	return func(a *Aggregator) {
		if initial > 0 {
			a.backoffInitial = initial
		}
		if max > 0 {
			a.backoffMax = max
		}
	}
}

// WithAggregatorObs attaches an observability sink.
func WithAggregatorObs(sink *obs.Sink) AggregatorOption {
	return func(a *Aggregator) { a.obs = sink }
}

// NewAggregator creates an aggregator named name.
func NewAggregator(name string, opts ...AggregatorOption) *Aggregator {
	a := &Aggregator{
		name: name,
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		},
		backoffInitial: defaultBackoffInitial,
		backoffMax:     defaultBackoffMax,
		slaves:         make(map[string]*slaveConn),
		stop:           make(chan struct{}),
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Start begins listening for subtree slave registrations on addr.
func (a *Aggregator) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: aggregator listen: %w", err)
	}
	a.Serve(ln)
	return nil
}

// Serve starts the aggregator on an already-created listener (chaos tests
// inject fault-wrapped listeners this way).
func (a *Aggregator) Serve(ln net.Listener) {
	a.ln = ln
	a.wg.Add(1)
	go a.acceptLoop()
}

// Addr returns the slave-facing listening address, valid after Start.
func (a *Aggregator) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Slaves returns the names of the subtree slaves currently registered,
// sorted.
func (a *Aggregator) Slaves() []string {
	a.mu.Lock()
	out := make([]string, 0, len(a.slaves))
	for name := range a.slaves {
		out = append(out, name)
	}
	a.mu.Unlock()
	sort.Strings(out)
	return out
}

func (a *Aggregator) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					a.obs.Logger().Error("aggregator connection handler panicked", "panic", fmt.Sprint(r))
					_ = conn.Close()
				}
			}()
			a.serveSlaveConn(conn)
		}()
	}
}

// serveSlaveConn handles one subtree slave's connection: register, then
// route its responses to their pending asks.
func (a *Aggregator) serveSlaveConn(conn net.Conn) {
	defer conn.Close()
	r := newReader(conn)
	env, err := readFrame(r)
	if err != nil || env.Type != typeRegister || env.Slave == "" {
		return
	}
	sc := &slaveConn{
		name:    env.Slave,
		w:       newConnWriter(conn),
		pending: make(map[uint64]chan *envelope),
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	if old := a.slaves[sc.name]; old != nil {
		_ = old.w.conn.Close()
		defer old.failAll(fmt.Sprintf("slave %s re-registered", sc.name))
	}
	a.slaves[sc.name] = sc
	a.mu.Unlock()
	a.obs.Logger().Info("subtree slave registered", "aggregator", a.name, "slave", sc.name)
	defer func() {
		a.mu.Lock()
		if a.slaves[sc.name] == sc {
			delete(a.slaves, sc.name)
		}
		a.mu.Unlock()
		a.obs.Logger().Warn("subtree slave disconnected", "aggregator", a.name, "slave", sc.name)
		sc.failAll(fmt.Sprintf("slave %s disconnected", sc.name))
	}()
	for {
		env, err := readFrame(r)
		if err != nil {
			return
		}
		switch env.Type {
		case typeReports, typeError, typePong:
			if ch, ok := sc.takePending(env.ID); ok {
				ch <- env
			}
		case typePing:
			_ = sc.w.write(&envelope{Type: typePong, ID: env.ID}, 5*time.Second)
		}
	}
}

// Connect dials the master, registers as an aggregator, and serves subtree
// analyze requests in the background, re-dialing with capped exponential
// backoff when the connection drops.
func (a *Aggregator) Connect(masterAddr string) error {
	w, err := a.dialRegister(masterAddr)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		cancel()
		w.conn.Close()
		return fmt.Errorf("cluster: aggregator %s is closed", a.name)
	}
	a.cancelUp = cancel
	a.upW = w
	a.mu.Unlock()
	a.wg.Add(1)
	go a.manageUpstream(ctx, masterAddr, w)
	return nil
}

func (a *Aggregator) dialRegister(addr string) (*connWriter, error) {
	conn, err := a.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: aggregator dial: %w", err)
	}
	w := newConnWriter(conn)
	reg := &envelope{Type: typeRegister, Slave: a.name, Role: roleAggregator}
	if err := w.write(reg, 10*time.Second); err != nil {
		conn.Close()
		return nil, err
	}
	return w, nil
}

// manageUpstream serves the master connection and re-dials on failure until
// ctx is canceled or the aggregator closes.
func (a *Aggregator) manageUpstream(ctx context.Context, addr string, w *connWriter) {
	defer a.wg.Done()
	for {
		err := a.serveUpstream(w)
		w.conn.Close()
		a.mu.Lock()
		closed := a.closed
		a.mu.Unlock()
		if closed || ctx.Err() != nil {
			return
		}
		a.obs.Logger().Warn("master connection lost", "aggregator", a.name, "err", err)
		delay := a.backoffInitial
		for {
			select {
			case <-ctx.Done():
				return
			case <-a.stop:
				return
			case <-time.After(jitter(delay)):
			}
			next, err := a.dialRegister(addr)
			if err == nil {
				a.mu.Lock()
				if a.closed {
					a.mu.Unlock()
					next.conn.Close()
					return
				}
				a.upW = next
				a.mu.Unlock()
				w = next
				break
			}
			delay *= 2
			if delay > a.backoffMax {
				delay = a.backoffMax
			}
		}
	}
}

// serveUpstream answers the master's requests until the connection fails.
func (a *Aggregator) serveUpstream(w *connWriter) error {
	r := newReader(w.conn)
	for {
		env, err := readFrame(r)
		if err != nil {
			return err
		}
		switch env.Type {
		case typeAnalyze:
			a.wg.Add(1)
			go a.handleSubtreeAnalyze(w, env)
		case typePing:
			if err := w.write(&envelope{Type: typePong, ID: env.ID}, 5*time.Second); err != nil {
				return err
			}
		default:
			resp := &envelope{Type: typeError, ID: env.ID, Err: fmt.Sprintf("unknown request %q", env.Type)}
			if err := w.write(resp, 10*time.Second); err != nil {
				return err
			}
		}
	}
}

// handleSubtreeAnalyze fans one analyze request out to the requested subtree
// slaves and answers with one sub-entry per slave. The subtree quorum (plus
// the same straggler grace the master uses) bounds how long a slow minority
// can hold the whole subtree's answer; slaves this aggregator has never seen
// — or that miss the budget — are answered as per-slave errors so the master
// can fall back to its direct connections for exactly those members.
func (a *Aggregator) handleSubtreeAnalyze(w *connWriter, env *envelope) {
	defer a.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			a.obs.Logger().Error("subtree analyze panicked", "aggregator", a.name, "panic", fmt.Sprint(r))
			_ = w.write(&envelope{Type: typeError, ID: env.ID, Code: codePanic,
				Err: fmt.Sprintf("aggregator %s: analyze panicked: %v", a.name, r)}, 10*time.Second)
		}
	}()
	budget := 30 * time.Second
	if env.BudgetMS > 0 {
		budget = time.Duration(env.BudgetMS) * time.Millisecond
	}
	deadline := time.Now().Add(budget)

	a.mu.Lock()
	conns := make(map[string]*slaveConn, len(env.Subtree))
	for _, name := range env.Subtree {
		if sc := a.slaves[name]; sc != nil {
			conns[name] = sc
		}
	}
	a.mu.Unlock()

	subs := make([]subAnswer, 0, len(env.Subtree))
	results := make(chan subAnswer, len(conns))
	for _, name := range env.Subtree {
		sc, ok := conns[name]
		if !ok {
			subs = append(subs, subAnswer{Slave: name,
				Err: fmt.Sprintf("cluster: slave %s not connected to aggregator %s", name, a.name)})
			continue
		}
		go func(sc *slaveConn) {
			results <- a.askSubtreeSlave(sc, env.TV, env.LookBack, deadline)
		}(sc)
	}

	need := 0
	if a.quorum > 0 && len(conns) > 0 {
		need = int(math.Ceil(a.quorum * float64(len(conns))))
		if need < 1 {
			need = 1
		}
		if need > len(conns) {
			need = len(conns)
		}
	}
	answered := 0
	got := make(map[string]bool, len(conns))
	collected := 0
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
collect:
	for collected < len(conns) {
		var s subAnswer
		select {
		case s = <-results:
		case <-timer.C:
			break collect
		case <-a.stop:
			break collect
		}
		collected++
		got[s.Slave] = true
		subs = append(subs, s)
		if s.Err == "" {
			answered++
		}
		if need > 0 && answered >= need {
			grace := quorumGraceCap
			if rem := time.Until(deadline) / 4; rem < grace {
				grace = rem
			}
			if grace <= 0 {
				break collect
			}
			gt := time.NewTimer(grace)
			for collected < len(conns) {
				select {
				case s := <-results:
					collected++
					got[s.Slave] = true
					subs = append(subs, s)
				case <-gt.C:
					break collect
				case <-a.stop:
					gt.Stop()
					break collect
				}
			}
			gt.Stop()
			break collect
		}
	}
	for name := range conns {
		if !got[name] {
			subs = append(subs, subAnswer{Slave: name,
				Err: fmt.Sprintf("cluster: slave %s: deadline exceeded", name)})
		}
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].Slave < subs[j].Slave })
	a.obs.Registry().Counter("fchain_subtree_analyze_total", "Subtree analyze requests served.").Inc()
	_ = w.write(&envelope{Type: typeReports, ID: env.ID, Sub: subs}, 30*time.Second)
}

// askSubtreeSlave sends one analyze to a subtree slave and waits for its
// answer within the deadline, restating the remaining budget in the slave's
// clock exactly like the master does.
func (a *Aggregator) askSubtreeSlave(sc *slaveConn, tv int64, lookBack int, deadline time.Time) subAnswer {
	wait := time.Until(deadline)
	if wait <= 0 {
		return subAnswer{Slave: sc.name, Err: fmt.Sprintf("cluster: slave %s: deadline exceeded", sc.name)}
	}
	budgetMS := wait.Milliseconds()
	if budgetMS < 1 {
		budgetMS = 1
	}
	id := a.reqCounter.Add(1)
	ch := make(chan *envelope, 1)
	if !sc.addPending(id, ch) {
		return subAnswer{Slave: sc.name, Err: fmt.Sprintf("cluster: slave %s disconnected", sc.name)}
	}
	start := time.Now()
	req := &envelope{Type: typeAnalyze, ID: id, TV: tv, LookBack: lookBack, BudgetMS: budgetMS}
	if err := sc.w.write(req, wait); err != nil {
		sc.removePending(id)
		return subAnswer{Slave: sc.name, Err: err.Error()}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case env := <-ch:
		if env.Type == typeError {
			return subAnswer{Slave: sc.name, Err: env.Err, Code: env.Code}
		}
		// UsedTV passes the slave's clock echo through untouched: the
		// aggregator's own clock must never enter the master's offset math.
		return subAnswer{Slave: sc.name, Reports: env.Reports, UsedTV: env.UsedTV,
			WaitNS: time.Since(start).Nanoseconds()}
	case <-timer.C:
		sc.removePending(id)
		return subAnswer{Slave: sc.name, Err: fmt.Sprintf("cluster: slave %s timed out", sc.name)}
	case <-a.stop:
		sc.removePending(id)
		return subAnswer{Slave: sc.name, Err: "cluster: aggregator closed"}
	}
}

// Close shuts the aggregator down and waits for its goroutines.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.stop)
	}
	cancel := a.cancelUp
	// Closing the upstream connection unblocks serveUpstream's pending read;
	// without it wg.Wait would deadlock against a healthy master link.
	if a.upW != nil {
		_ = a.upW.conn.Close()
	}
	for _, sc := range a.slaves {
		_ = sc.w.conn.Close()
	}
	a.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	var err error
	if a.ln != nil {
		err = a.ln.Close()
	}
	a.wg.Wait()
	return err
}
