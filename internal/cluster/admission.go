package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded reports that admission control shed the request before any
// analysis ran: the in-flight limit was reached and the bounded wait queue
// was full (or waiting was pointless because the caller's deadline expired
// first). Callers should back off rather than retry immediately.
var ErrOverloaded = errors.New("cluster: overloaded, request shed")

// OverloadedError is an overload shed carrying a backoff hint: RetryAfter
// scales with the admission queue depth at shed time, so a saturated daemon
// tells its clients how long to stay away instead of being hot-looped back
// into the ground. errors.Is(err, ErrOverloaded) matches it.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", ErrOverloaded, e.RetryAfter)
}

// Is lets errors.Is treat every OverloadedError as ErrOverloaded.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// retryAfterQuantum is the per-queued-waiter backoff unit behind Retry-After
// hints: each request already waiting ahead is charged one quantum.
const retryAfterQuantum = 250 * time.Millisecond

// retryAfterHint derives the backoff hint from the gate's backlog, capped at
// max (<= 0 leaves the hint uncapped).
func (g *gate) retryAfterHint(max time.Duration) time.Duration {
	hint := time.Duration(g.depth()+1) * retryAfterQuantum
	if max > 0 && hint > max {
		hint = max
	}
	return hint
}

// ErrQuorumNotMet reports that fewer slaves answered before the deadline
// than the configured quorum requires, so no diagnosis was produced.
var ErrQuorumNotMet = errors.New("cluster: quorum not met")

// gate is a bounded admission controller: at most limit requests run
// concurrently, at most queueCap more wait, and waiters are served LIFO.
// LIFO is deliberate under overload — the newest request has the freshest
// deadline and the most budget left, while the oldest waiter is closest to
// timing out anyway; when the queue overflows, the oldest waiter is shed.
// A nil *gate admits everything (the unlimited default).
type gate struct {
	mu       sync.Mutex
	inflight int
	limit    int
	queueCap int
	waiters  []*gateWaiter // stack: top (newest) at the end
}

type gateWaiter struct {
	ch chan bool // true = slot granted, false = shed
}

// newGate returns a gate admitting limit concurrent requests with queueCap
// waiting slots. limit <= 0 returns nil (unlimited).
func newGate(limit, queueCap int) *gate {
	if limit <= 0 {
		return nil
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &gate{limit: limit, queueCap: queueCap}
}

// depth returns the number of queued waiters (0 for a nil gate).
func (g *gate) depth() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters)
}

// tryAcquire claims a slot without waiting.
func (g *gate) tryAcquire() bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight < g.limit {
		g.inflight++
		return true
	}
	return false
}

// acquire claims a slot, waiting in the LIFO queue until granted, shed, or
// ctx expires. It returns nil on success, ErrOverloaded when shed (queue
// full, or queueCap is zero), or ctx.Err() when the context wins.
func (g *gate) acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	if g.inflight < g.limit {
		g.inflight++
		g.mu.Unlock()
		return nil
	}
	if g.queueCap == 0 {
		g.mu.Unlock()
		return ErrOverloaded
	}
	w := &gateWaiter{ch: make(chan bool, 1)}
	if len(g.waiters) >= g.queueCap {
		// Shed the oldest waiter (bottom of the stack) to make room.
		old := g.waiters[0]
		copy(g.waiters, g.waiters[1:])
		g.waiters[len(g.waiters)-1] = w
		old.ch <- false
	} else {
		g.waiters = append(g.waiters, w)
	}
	g.mu.Unlock()

	select {
	case granted := <-w.ch:
		if !granted {
			return ErrOverloaded
		}
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, q := range g.waiters {
			if q == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				g.mu.Unlock()
				return ctx.Err()
			}
		}
		g.mu.Unlock()
		// Already popped by release or shed: consume the pending signal so
		// a granted slot is not leaked.
		if granted := <-w.ch; granted {
			return nil
		}
		return ctx.Err()
	}
}

// release returns a slot, handing it to the newest waiter if any.
func (g *gate) release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if n := len(g.waiters); n > 0 {
		w := g.waiters[n-1]
		g.waiters = g.waiters[:n-1]
		w.ch <- true
		return
	}
	if g.inflight > 0 {
		g.inflight--
	}
}
