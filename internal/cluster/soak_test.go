package cluster

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fchain/internal/core"
	"fchain/internal/faultnet"
	"fchain/internal/ingest"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// TestChaosSoak runs a ~30 s localize loop against a cluster whose slaves
// feed a corrupted metric stream through lossy links that are periodically
// severed. It asserts the system neither panics nor leaks goroutines, that
// localization keeps succeeding under the chaos, and that the event journal
// written along the way is well-formed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("30s soak")
	}
	sim, tv, deps := faultScenario(t, 1)
	grace := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(grace) {
		time.Sleep(5 * time.Millisecond) // let helper goroutines from setup settle
	}
	baseline := runtime.NumGoroutine()

	journalPath := filepath.Join(t.TempDir(), "soak.jsonl")
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.Sink{
		Log:     obs.NewLogger(io.Discard, obs.LevelWarn),
		Metrics: obs.NewRegistry(),
		Traces:  obs.NewTraceRing(8),
		Journal: journal,
	}

	master := NewMaster(core.Config{}, deps,
		WithMasterObs(sink),
		WithLocalizeTimeout(5*time.Second),
		WithBreaker(1000, time.Millisecond)) // never park a slave for long
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// Half the slaves connect through lossy, severable proxies.
	comps := sim.Components()
	var proxies []*faultnet.Proxy
	var slaves []*Slave
	for i, comp := range comps {
		addr := master.Addr()
		if i%2 == 0 {
			proxy, err := faultnet.NewProxy(master.Addr(), faultnet.Config{
				Seed:     int64(100 + i),
				DropProb: 0.01,
				Latency:  time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			proxies = append(proxies, proxy)
			addr = proxy.Addr()
		}
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{ReorderWindow: 5},
			WithSlaveObs(sink),
			WithBackoff(10*time.Millisecond, 100*time.Millisecond))
		if err := sl.Connect(addr); err != nil {
			t.Fatal(err)
		}
		slaves = append(slaves, sl)
	}
	waitFor(t, 5*time.Second, func() bool { return len(master.Slaves()) == len(comps) }, "registrations")

	// Feeders push the corrupted capture concurrently with the localize
	// loop: drops, dups, NaNs, magnitude spikes, and bounded reordering,
	// all through the sanitizing Ingest path.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, comp := range comps {
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			var clean []ingest.Sample
			for j := 0; j < series.Len() && series.TimeAt(j) <= tv; j++ {
				clean = append(clean, ingest.Sample{T: series.TimeAt(j), V: series.At(j)})
			}
			dirty := ingest.Corrupt(clean, ingest.CorruptConfig{
				Seed:      int64(i)*10 + int64(k),
				DropRate:  0.02,
				DupRate:   0.01,
				NaNRate:   0.01,
				SpikeRate: 0.005,
				JitterMax: 3,
			})
			wg.Add(1)
			go func(sl *Slave, comp string, k metric.Kind, dirty []ingest.Sample) {
				defer wg.Done()
				for j, s := range dirty {
					if j%500 == 0 {
						select {
						case <-stop:
							return
						case <-time.After(time.Millisecond):
						}
					}
					if err := sl.Ingest(comp, s.T, k, s.V); err != nil {
						t.Errorf("ingest %s/%s: %v", comp, k, err)
						return
					}
				}
			}(slaves[i], comp, k, dirty)
		}
	}

	// The soak loop: localize continuously, severing a proxy every second
	// so slaves are mid-reconnect while requests are in flight.
	var ok, failed atomic.Int64
	deadline := time.Now().Add(30 * time.Second)
	lastSever := time.Now()
	severed := 0
	for time.Now().Before(deadline) {
		if time.Since(lastSever) > time.Second {
			proxies[severed%len(proxies)].Sever()
			severed++
			lastSever = time.Now()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		res, err := master.Localize(ctx, tv)
		cancel()
		if err != nil {
			failed.Add(1)
		} else {
			ok.Add(1)
			if res.Trace == nil {
				t.Error("successful Localize returned no trace")
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatalf("no Localize succeeded during the soak (%d failures)", failed.Load())
	}
	t.Logf("soak: %d localizations ok, %d failed, %d severs", ok.Load(), failed.Load(), severed)

	// Tear everything down and verify the goroutine count returns to the
	// baseline (with grace for exiting handlers).
	for _, sl := range slaves {
		sl.Close()
	}
	for _, p := range proxies {
		p.Close()
	}
	master.Close()
	waitFor(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+5
	}, "goroutine count to settle")

	// The journal must be fully parseable and contain the soak's record.
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJournal(journalPath)
	if err != nil {
		t.Fatalf("journal malformed: %v", err)
	}
	var localized, analyzed int64
	for _, ev := range events {
		switch ev.Type {
		case "localize":
			localized++
		case "analyze":
			analyzed++
		}
	}
	if localized == 0 || analyzed == 0 {
		t.Errorf("journal events: %d localize, %d analyze, want both > 0 (total %d)",
			localized, analyzed, len(events))
	}
	// And the shared metrics registry saw the traffic from both layers.
	if n := sink.Registry().Counter("fchain_ingest_samples_total", "").Value(); n == 0 {
		t.Error("ingest counter never incremented")
	}
	okCount := sink.Registry().CounterWith("fchain_localize_total", "", map[string]string{"outcome": "ok"})
	if okCount.Value() != ok.Load() {
		t.Errorf("localize ok counter = %d, want %d", okCount.Value(), ok.Load())
	}
}

// TestAdmissionShedSoak hammers a tightly-admitted master from four times as
// many callers as it will run, for several seconds, and checks the shedding
// story end to end: work still completes, some calls are shed, every shed
// call carries the Overloaded flag, the shed outcome counter and journal
// reconcile exactly with the callers' own tally, and no admission slot
// leaks. Run with -race: the LIFO waiter stack is the contended structure.
func TestAdmissionShedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	journalPath := filepath.Join(t.TempDir(), "shed-soak.jsonl")
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.Sink{
		Log:     obs.NewLogger(io.Discard, obs.LevelWarn),
		Metrics: obs.NewRegistry(),
		Traces:  obs.NewTraceRing(8),
		Journal: journal,
	}
	master := NewMaster(core.Config{}, nil,
		WithMasterObs(sink),
		WithAdmission(2, 2),
		WithLocalizeRetries(0))
	tv := overloadCluster(t, master, nil)
	waitFor(t, 5*time.Second, func() bool { return len(master.Slaves()) == 4 }, "registrations")

	var ok, shed, failed atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(6 * time.Second)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				res, err := master.Localize(ctx, tv)
				cancel()
				switch {
				case err == nil:
					ok.Add(1)
				case res.Overloaded:
					// Shed either synchronously (queue overflow) or by the
					// caller's deadline expiring while queued.
					shed.Add(1)
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("overloaded result with unexpected error: %v", err)
					}
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	t.Logf("shed soak: %d ok, %d shed, %d failed", ok.Load(), shed.Load(), failed.Load())
	if ok.Load() == 0 {
		t.Error("no Localize completed under admission pressure")
	}
	if shed.Load() == 0 {
		t.Error("8 callers against a limit-2/queue-2 gate shed nothing")
	}
	if n := sink.Registry().CounterWith("fchain_localize_total", "",
		map[string]string{"outcome": "shed"}).Value(); n != shed.Load() {
		t.Errorf("shed counter = %d, callers observed %d", n, shed.Load())
	}
	if n := sink.Registry().CounterWith("fchain_localize_total", "",
		map[string]string{"outcome": "ok"}).Value(); n != ok.Load() {
		t.Errorf("ok counter = %d, callers observed %d", n, ok.Load())
	}

	// Every admission slot must be free again after the storm.
	for i := 0; i < 2; i++ {
		if !master.admit.tryAcquire() {
			t.Fatal("admission slot leaked after soak")
		}
	}

	// The journal recorded exactly one localize_shed event per shed call.
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJournal(journalPath)
	if err != nil {
		t.Fatalf("journal malformed: %v", err)
	}
	var shedEvents int64
	for _, ev := range events {
		if ev.Type == "localize_shed" {
			shedEvents++
		}
	}
	if shedEvents != shed.Load() {
		t.Errorf("journal localize_shed events = %d, want %d", shedEvents, shed.Load())
	}
}
