package cluster

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per ring member. 128 points per
// member keeps the arc-length variance low enough that component load stays
// within ~25% of the mean across realistic cluster sizes (see the balance
// property test) while membership changes stay cheap to recompute.
const DefaultVnodes = 128

// ringSeed folds a fixed constant into every hash so the placement is a pure
// function of (member names, component names, vnodes): two processes — or the
// same master before and after a restart — always compute identical
// assignments. The constant was chosen by sweeping candidates against the
// balance property test (3–50 members, 10k components, max/mean ≤ 1.25).
const ringSeed uint64 = 0xfc4a1e6b97d203c5

// Ring is a consistent-hash ring placing component names on slave members.
// Each member contributes vnodes points (hashes of "member#i"); a component
// is owned by the member whose point follows the component's hash clockwise.
// Adding or removing a member therefore moves only the components whose
// owning arc changed — about 1/n of them — which is what keeps rebalancing
// (and the checkpoint handoffs it triggers) incremental.
//
// Ring is not safe for concurrent use; the master guards it with its own
// lock.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by (hash, member) — ties broken by name for determinism
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (vnodes <= 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// ringHash hashes s with FNV-1a 64 and a splitmix64 finalizer. FNV alone
// clusters badly on short structured names ("host-7#12"); the finalizer
// spreads those low-entropy inputs uniformly over the ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64() ^ ringSeed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member (its vnodes points). It reports whether the ring
// changed (false for an already-present member).
func (r *Ring) Add(member string) bool {
	if r.members[member] {
		return false
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + strconv.Itoa(i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return true
}

// Remove deletes a member and its points, reporting whether it was present.
func (r *Ring) Remove(member string) bool {
	if !r.members[member] {
		return false
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool { return r.members[member] }

// Members returns the ring's members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning key — the first point at or clockwise
// after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's first
	}
	return r.points[i].member, true
}

// Assign maps every key to its owner, returning owner → sorted keys. Keys on
// an empty ring are absent from the result.
func (r *Ring) Assign(keys []string) map[string][]string {
	out := make(map[string][]string, len(r.members))
	for _, key := range keys {
		if owner, ok := r.Owner(key); ok {
			out[owner] = append(out[owner], key)
		}
	}
	for _, comps := range out {
		sort.Strings(comps)
	}
	return out
}

// BalanceBound is the load factor enforced by AssignBounded: no member owns
// more than ceil(BalanceBound × keys/members) keys.
const BalanceBound = 1.25

// AssignBounded maps every key to a member using consistent hashing with
// bounded loads: each key goes to the first member at or clockwise after its
// hash whose load is still under ceil(bound × mean). Plain arc ownership at
// 128 vnodes leaves ~9% load stddev, so the worst member can exceed the mean
// by 30%+ on unlucky member sets; walking the overflow clockwise caps every
// member at the bound by construction while still moving only ~1/n keys per
// membership change (an overflowing key's fallback member is itself a
// consistent function of the ring). Keys are placed in hash order so the
// result is a pure function of (members, keys, vnodes) — deterministic
// across processes. bound <= 1 selects BalanceBound. The result maps every
// key; it is empty only when the ring is.
// AssignStandby maps every key to a warm-standby member: the first member at
// or clockwise after the key's hash that is distinct from the key's primary
// owner and whose standby load is still under ceil(bound × keys/members).
// Like AssignBounded, keys are placed in hash order so the result is a pure
// function of (members, keys, primary, vnodes) — deterministic across
// processes — and a membership change moves only the standbys whose owning
// arc (or overflow fallback) changed, about 1/n of them. When every distinct
// member is already at the cap the first distinct member is taken anyway:
// with two members the single non-primary member necessarily backs every key,
// and coverage beats balance for a standby. primary is consulted only for
// exclusion (standby ≠ primary always holds); keys without a primary entry
// are excluded from nothing. Rings with fewer than two members return an
// empty map — there is nowhere distinct to stand by.
func (r *Ring) AssignStandby(keys []string, primary map[string]string, bound float64) map[string]string {
	if len(r.members) < 2 || len(keys) == 0 {
		return map[string]string{}
	}
	if bound <= 1 {
		bound = BalanceBound
	}
	capPer := int(math.Ceil(bound * float64(len(keys)) / float64(len(r.members))))
	if capPer < 1 {
		capPer = 1
	}
	type keyHash struct {
		hash uint64
		key  string
	}
	hashed := make([]keyHash, len(keys))
	for i, k := range keys {
		hashed[i] = keyHash{ringHash(k), k}
	}
	sort.Slice(hashed, func(i, j int) bool {
		if hashed[i].hash != hashed[j].hash {
			return hashed[i].hash < hashed[j].hash
		}
		return hashed[i].key < hashed[j].key
	})
	load := make(map[string]int, len(r.members))
	out := make(map[string]string, len(keys))
	for _, kh := range hashed {
		prim := primary[kh.key]
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh.hash })
		fallback := ""
		for step := 0; step < len(r.points); step++ {
			p := r.points[(i+step)%len(r.points)]
			if p.member == prim {
				continue
			}
			if fallback == "" {
				fallback = p.member
			}
			if load[p.member] < capPer {
				load[p.member]++
				out[kh.key] = p.member
				fallback = ""
				break
			}
		}
		if fallback != "" {
			load[fallback]++
			out[kh.key] = fallback
		}
	}
	return out
}

func (r *Ring) AssignBounded(keys []string, bound float64) map[string]string {
	if len(r.points) == 0 || len(keys) == 0 {
		return map[string]string{}
	}
	if bound <= 1 {
		bound = BalanceBound
	}
	capPer := int(math.Ceil(bound * float64(len(keys)) / float64(len(r.members))))
	if capPer < 1 {
		capPer = 1
	}
	type keyHash struct {
		hash uint64
		key  string
	}
	hashed := make([]keyHash, len(keys))
	for i, k := range keys {
		hashed[i] = keyHash{ringHash(k), k}
	}
	sort.Slice(hashed, func(i, j int) bool {
		if hashed[i].hash != hashed[j].hash {
			return hashed[i].hash < hashed[j].hash
		}
		return hashed[i].key < hashed[j].key
	})
	load := make(map[string]int, len(r.members))
	out := make(map[string]string, len(keys))
	for _, kh := range hashed {
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh.hash })
		for step := 0; step < len(r.points); step++ {
			p := r.points[(i+step)%len(r.points)]
			if load[p.member] < capPer {
				load[p.member]++
				out[kh.key] = p.member
				break
			}
		}
	}
	return out
}
