package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/core"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// startShardedSlaves boots n empty slaves (no components of their own — the
// master owns placement) against master and waits for their registrations.
func startShardedSlaves(t *testing.T, master *Master, n int, opts ...SlaveOption) map[string]*Slave {
	t.Helper()
	slaves := make(map[string]*Slave, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard-%d", i)
		sl := NewSlave(name, nil, core.Config{}, opts...)
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
		slaves[name] = sl
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) >= n }, "sharded slaves to register")
	return slaves
}

// TestShardedAssignmentEnforcement pins the placement contract: after a
// rebalance every registered component has exactly one owner, each slave
// monitors exactly its assignment, and feeding an unowned component errors.
func TestShardedAssignmentEnforcement(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithSharding(0), WithAutoRebalance(false))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	slaves := startShardedSlaves(t, master, 3)

	var comps []string
	for i := 0; i < 20; i++ {
		comps = append(comps, fmt.Sprintf("c%02d", i))
	}
	master.RegisterComponents(comps...)
	moved, err := master.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved != len(comps) {
		t.Errorf("first rebalance moved %d components, want %d", moved, len(comps))
	}

	asn := master.Assignments()
	ownerOf := make(map[string]string)
	for owner, owned := range asn {
		if _, ok := slaves[owner]; !ok {
			t.Errorf("assignment names unknown owner %q", owner)
		}
		for _, comp := range owned {
			if prev, dup := ownerOf[comp]; dup {
				t.Errorf("component %s assigned to both %s and %s", comp, prev, owner)
			}
			ownerOf[comp] = owner
		}
	}
	if len(ownerOf) != len(comps) {
		t.Fatalf("placement covers %d components, want %d", len(ownerOf), len(comps))
	}
	for _, comp := range comps {
		owner, ok := master.Owner(comp)
		if !ok || owner != ownerOf[comp] {
			t.Errorf("Owner(%s) = %q, %v; assignments say %q", comp, owner, ok, ownerOf[comp])
		}
	}

	// Rebalance waits for assignment acks, so every slave already monitors
	// exactly its owned set.
	for name, sl := range slaves {
		want := asn[name]
		got := sl.Monitored()
		if len(got) != len(want) {
			t.Errorf("slave %s monitors %v, assigned %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("slave %s monitors %v, assigned %v", name, got, want)
				break
			}
		}
	}

	// Ownership is enforced at Observe: the owner accepts the sample, any
	// other slave refuses it.
	comp := comps[0]
	owner := ownerOf[comp]
	if err := slaves[owner].Observe(comp, 1, metric.CPU, 10); err != nil {
		t.Errorf("owner %s rejected its own component %s: %v", owner, comp, err)
	}
	for name, sl := range slaves {
		if name == owner {
			continue
		}
		if err := sl.Observe(comp, 1, metric.CPU, 10); err == nil {
			t.Errorf("non-owner %s accepted component %s", name, comp)
		}
	}

	// A stable membership re-rebalance is a no-op.
	if moved, err := master.Rebalance(); err != nil || moved != 0 {
		t.Errorf("steady-state rebalance moved %d (err %v), want 0", moved, err)
	}
}

// shardedScenarioCluster boots a sharded master over n empty slaves, places
// the scenario's components, and feeds each component's series to its owner.
func shardedScenarioCluster(t *testing.T, seed int64, n int, slaveOpts []SlaveOption, masterOpts ...MasterOption) (*Master, map[string]*Slave, int64) {
	t.Helper()
	sim, tv, deps := faultScenario(t, seed)
	opts := append([]MasterOption{WithSharding(0), WithAutoRebalance(false)}, masterOpts...)
	master := NewMaster(core.Config{}, deps, opts...)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	slaves := startShardedSlaves(t, master, n, slaveOpts...)
	master.RegisterComponents(sim.Components()...)
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for _, comp := range sim.Components() {
		owner, ok := master.Owner(comp)
		if !ok {
			t.Fatalf("component %s not placed", comp)
		}
		sl := slaves[owner]
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := sl.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return master, slaves, tv
}

func diagnosisJSON(t *testing.T, res core.LocalizeResult) []byte {
	t.Helper()
	raw, err := json.Marshal(res.Diagnosis)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestShardedLocalizeAndWarmHandoff runs the scenario over a sharded cluster,
// then grows the membership: the join's rebalance must move state warm
// (export → restore) so the diagnosis after the move is byte-identical to the
// one before it.
func TestShardedLocalizeAndWarmHandoff(t *testing.T) {
	master, _, tv := shardedScenarioCluster(t, 1, 2, nil)
	want, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if names := want.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("sharded diagnosis = %v, want [db]", names)
	}
	if want.Coverage() != 1 {
		t.Fatalf("sharded coverage = %v, want 1", want.Coverage())
	}

	// Grow the membership; the moved components' models ride the handoff.
	joiner := NewSlave("shard-join", nil, core.Config{})
	if err := joiner.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 3 }, "joiner to register")
	moved, err := master.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("join rebalance moved nothing")
	}
	if got := joiner.Monitored(); len(got) == 0 {
		t.Fatal("joiner owns no components after rebalance")
	}

	got, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coverage() != 1 {
		t.Fatalf("post-join coverage = %v, want 1", got.Coverage())
	}
	if a, b := diagnosisJSON(t, want), diagnosisJSON(t, got); !bytes.Equal(a, b) {
		t.Errorf("diagnosis changed across a warm handoff:\n before: %s\n after:  %s", a, b)
	}
}

// TestKillAndRebalanceRestoresOnsetExactly is the kill-and-rebalance
// acceptance path: the donor dies before the rebalance, so the moved
// components cold-start from the shared checkpoint directory — and because
// checkpoint restore is byte-exact, the new owner must reproduce the donor's
// control onset (and the whole diagnosis) byte-identically.
func TestKillAndRebalanceRestoresOnsetExactly(t *testing.T) {
	shared := t.TempDir()
	master, slaves, tv := shardedScenarioCluster(t, 5, 2,
		[]SlaveOption{WithCheckpointDir(shared), WithReconnect(false)})
	want, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if names := want.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("control diagnosis = %v, want [db]", names)
	}

	donorName, ok := master.Owner(apps.DB)
	if !ok {
		t.Fatal("db not placed")
	}
	donor := slaves[donorName]
	// Close writes the final checkpoints, then the donor is "killed": the
	// master must move its components to the survivor, which restores them
	// from the shared checkpoint files (the handoff cold-start fallback).
	if err := donor.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "donor eviction")
	moved, err := master.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance after donor death moved nothing")
	}

	got, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coverage() != 1 {
		t.Fatalf("post-kill coverage = %v (missing %v), want 1", got.Coverage(), got.MissingComponents)
	}
	names := got.Diagnosis.CulpritNames()
	if len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("post-kill diagnosis = %v, want [db]", names)
	}
	if got.Diagnosis.Culprits[0].Onset != want.Diagnosis.Culprits[0].Onset {
		t.Errorf("post-kill onset = %d, control onset = %d",
			got.Diagnosis.Culprits[0].Onset, want.Diagnosis.Culprits[0].Onset)
	}
	if a, b := diagnosisJSON(t, want), diagnosisJSON(t, got); !bytes.Equal(a, b) {
		t.Errorf("diagnosis changed across kill-and-rebalance:\n before: %s\n after:  %s", a, b)
	}
}

// TestKillSlaveMidHandoff kills the donor inside the handoff protocol (via
// the chaos hook that runs right before each move's export): the rebalance
// must complete without wedging, and a follow-up pass must land every
// component on a live owner.
func TestKillSlaveMidHandoff(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithSharding(0), WithAutoRebalance(false),
		WithHandoffTimeout(time.Second), WithHandoffRetries(1))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	slaves := startShardedSlaves(t, master, 2, WithReconnect(false))

	var comps []string
	for i := 0; i < 12; i++ {
		comps = append(comps, fmt.Sprintf("k%02d", i))
	}
	master.RegisterComponents(comps...)
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}

	joiner := NewSlave("shard-join", nil, core.Config{}, WithReconnect(false))
	if err := joiner.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 3 }, "joiner to register")

	// The first handoff toward the joiner kills its donor mid-protocol.
	var once sync.Once
	var killed string
	hook := func(comp, from, to string) {
		if to != "shard-join" || from == "" {
			return
		}
		once.Do(func() {
			killed = from
			slaves[from].Close()
		})
	}
	master.handoffHook.Store(&hook)
	defer master.handoffHook.Store(nil)

	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if killed == "" {
		t.Fatal("chaos hook never fired: no move toward the joiner")
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "killed donor eviction")
	master.handoffHook.Store(nil)
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}

	live := map[string]bool{"shard-join": true}
	for name := range slaves {
		if name != killed {
			live[name] = true
		}
	}
	placed := make(map[string]bool)
	for owner, owned := range master.Assignments() {
		if !live[owner] {
			t.Errorf("component(s) %v still owned by dead slave %s", owned, owner)
		}
		for _, comp := range owned {
			placed[comp] = true
		}
	}
	if len(placed) != len(comps) {
		t.Errorf("placement covers %d components after chaos, want %d", len(placed), len(comps))
	}
}

// TestFlappingMembershipSettles churns one slave through repeated join/leave
// cycles under auto-rebalance and verifies the placement converges back onto
// the stable members with every component owned.
func TestFlappingMembershipSettles(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithSharding(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	startShardedSlaves(t, master, 2, WithReconnect(false))

	var comps []string
	for i := 0; i < 16; i++ {
		comps = append(comps, fmt.Sprintf("f%02d", i))
	}
	master.RegisterComponents(comps...)
	placedOn := func(owners map[string]bool) func() bool {
		return func() bool {
			total := 0
			for owner, owned := range master.Assignments() {
				if !owners[owner] {
					return false
				}
				total += len(owned)
			}
			return total == len(comps)
		}
	}
	stable := map[string]bool{"shard-0": true, "shard-1": true}
	waitFor(t, 5*time.Second, placedOn(stable), "initial auto placement")

	for i := 0; i < 4; i++ {
		flap := NewSlave("flapper", nil, core.Config{}, WithReconnect(false))
		if err := flap.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 3 }, "flapper join")
		flap.Close()
		waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "flapper leave")
	}
	waitFor(t, 5*time.Second, placedOn(stable), "placement to settle after flapping")

	res, err := master.Localize(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComponentsReported != len(comps) {
		t.Errorf("post-flap localize covered %d/%d components (missing %v)",
			res.ComponentsReported, len(comps), res.MissingComponents)
	}
}

// TestMembershipJournalMetricsReconcile drives joins, an eviction, and
// rebalances under a journal-backed sink and reconciles the journal against
// the metrics registry exactly: members = joins - evictions, and the summed
// rebalance_done moved counts equal the rebalance components counter.
func TestMembershipJournalMetricsReconcile(t *testing.T) {
	journalPath := t.TempDir() + "/cluster.journal"
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := &obs.Sink{Metrics: reg, Journal: journal}

	master := NewMaster(core.Config{}, nil, WithSharding(0), WithMasterObs(sink))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	slaves := startShardedSlaves(t, master, 3, WithReconnect(false))

	var comps []string
	for i := 0; i < 24; i++ {
		comps = append(comps, fmt.Sprintf("m%02d", i))
	}
	master.RegisterComponents(comps...)
	fullPlacement := func() bool {
		total := 0
		for _, owned := range master.Assignments() {
			total += len(owned)
		}
		return total == len(comps)
	}
	waitFor(t, 5*time.Second, fullPlacement, "initial auto placement")

	// One eviction...
	slaves["shard-0"].Close()
	waitFor(t, 5*time.Second, func() bool {
		return len(master.Slaves()) == 2 && len(master.Assignments()["shard-0"]) == 0
	}, "eviction rebalance")
	// ...then one late join.
	late := NewSlave("shard-late", nil, core.Config{}, WithReconnect(false))
	if err := late.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { late.Close() })
	waitFor(t, 5*time.Second, func() bool {
		return len(master.Assignments()["shard-late"]) > 0
	}, "join rebalance")

	// Close the master first: any in-flight rebalance pass finishes before
	// Close returns, so journal and registry are final when read.
	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	joins, evictions := 0, 0
	var movedSum int64
	rebalances := 0
	for _, ev := range events {
		switch ev.Type {
		case "member_joined":
			joins++
		case "member_evicted":
			evictions++
		case "rebalance_done":
			var data struct {
				Moved int64 `json:"moved"`
			}
			if err := json.Unmarshal(ev.Data, &data); err != nil {
				t.Fatalf("malformed rebalance_done event: %v", err)
			}
			movedSum += data.Moved
			rebalances++
		}
	}
	if joins != 4 || evictions != 1 {
		t.Errorf("journal recorded %d joins, %d evictions; want 4, 1", joins, evictions)
	}
	if rebalances == 0 {
		t.Error("journal recorded no rebalance_done events")
	}
	if gauge := reg.Gauge("fchain_cluster_members", "").Value(); gauge != float64(joins-evictions) {
		t.Errorf("fchain_cluster_members = %v, journal says %d", gauge, joins-evictions)
	}
	if counter := reg.Counter("fchain_rebalance_components_total", "").Value(); counter != movedSum {
		t.Errorf("fchain_rebalance_components_total = %d, journal rebalance_done sum = %d", counter, movedSum)
	}
	if movedSum < int64(len(comps)) {
		t.Errorf("moved sum %d below initial placement size %d", movedSum, len(comps))
	}
}

// TestOverloadRetryAfterHint pins the Retry-After contract on shed Localize
// calls: the error is an OverloadedError (still errors.Is-compatible with
// ErrOverloaded) whose hint is derived from the queue depth and mirrored on
// the result.
func TestOverloadRetryAfterHint(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithAdmission(1, 0),
		WithLocalizeTimeout(3*time.Second), WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	// A registered slave that never answers analyze keeps the first call in
	// flight for its full deadline.
	fakeSlave(t, master.Addr(), "mute", []string{"a"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "fake slave registration")

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = master.Localize(context.Background(), 50)
	}()
	waitFor(t, 2*time.Second, func() bool {
		master.admit.mu.Lock()
		defer master.admit.mu.Unlock()
		return master.admit.inflight > 0
	}, "first localize to occupy admission")

	res, err := master.Localize(context.Background(), 60)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second localize error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("second localize error %T does not unwrap to *OverloadedError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if got := time.Duration(res.RetryAfterMS) * time.Millisecond; got != oe.RetryAfter {
		t.Errorf("result RetryAfterMS %v != error RetryAfter %v", got, oe.RetryAfter)
	}
	if oe.RetryAfter > 3*time.Second {
		t.Errorf("RetryAfter %v exceeds the localize deadline", oe.RetryAfter)
	}
	<-done
}

// TestServiceRetryAfterOverTheWire verifies the Retry-After hint survives the
// violate wire protocol: a shed Violate reconstructs an OverloadedError with
// the master's hint on the client side.
func TestServiceRetryAfterOverTheWire(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithAdmission(1, 0),
		WithLocalizeTimeout(3*time.Second), WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	svc := NewService(master, ServiceConfig{})
	t.Cleanup(func() { svc.Drain(5 * time.Second) })
	fakeSlave(t, master.Addr(), "mute", []string{"a"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "fake slave registration")

	client, err := DialService(master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = client.Violate(context.Background(), "acme", "shop", 100)
	}()
	waitFor(t, 2*time.Second, func() bool {
		master.admit.mu.Lock()
		defer master.admit.mu.Unlock()
		return master.admit.inflight > 0
	}, "first violation to occupy admission")

	// A different app so the coalescer does not fold the calls together.
	_, err = client.Violate(context.Background(), "acme", "billing", 500)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second violate error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("wire error %T does not unwrap to *OverloadedError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("wire RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	<-done
}
