//go:build !race

package cluster

// raceEnabled reports whether the race detector is compiled in; scale tests
// use it to skip fleets that are impractically slow under instrumentation.
const raceEnabled = false
