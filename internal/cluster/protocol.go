// Package cluster implements FChain's decentralized runtime (paper Fig. 1):
// slave daemons colocated with the monitored hosts run normal fluctuation
// modeling and abnormal change point selection; a master daemon triggers
// the slaves when a performance anomaly is detected, gathers their
// per-component reports, and runs the integrated fault diagnosis.
//
// The wire protocol is newline-delimited JSON over TCP: a slave dials the
// master, registers the components it monitors, and then answers analyze
// requests. The paper relies on NTP to keep host clocks within a few
// milliseconds; the slave supports an explicit clock-skew offset so tests
// can verify FChain tolerates small skews (§II-B fn. 2).
package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"fchain/internal/core"
)

// Message types exchanged between master and slaves.
const (
	typeRegister = "register"
	typeAnalyze  = "analyze"
	typeReports  = "reports"
	typePing     = "ping"
	typePong     = "pong"
	typeError    = "error"
	// Service-mode frames: a violation client (an SLO detector) dials the
	// master and streams violate frames; each is answered by a verdict frame
	// correlated by ID.
	typeViolate = "violate"
	typeVerdict = "verdict"
	// Sharded-mode frames. The master pushes each slave its authoritative
	// owned-component set with an assign frame (acked); a rebalance moves a
	// component's model state with an export (donor answers with a state
	// frame carrying its MonitorSnapshot) followed by a restore on the new
	// owner (acked) — export → transfer → restore → ack → cutover.
	typeAssign  = "assign"
	typeExport  = "export"
	typeState   = "state"
	typeRestore = "restore"
	typeAck     = "ack"
	// Warm-standby replication frame. A primary slave ships one component's
	// state delta (a core.ReplDelta in State, sequenced by Seq) upstream; the
	// master relays it to the component's standby over the standby's own
	// connection and echoes the standby's ack (or a codeReplFull error asking
	// for a full resend) back to the primary. A replicate frame with an empty
	// Component is the primary's clean-tick marker: every delta of this
	// replication round precedes it, so the master can track per-slave
	// replication lag from marker arrivals.
	typeReplicate = "replicate"
)

// roleAggregator marks a registration as an aggregator: the peer fans
// analyze requests out to its own subtree of slaves and merges their
// answers. An empty Role registers a plain slave.
const roleAggregator = "aggregator"

// envelope is the single frame shape for every message.
type envelope struct {
	Type string `json:"type"`
	// ID correlates an analyze request with its reports response.
	ID uint64 `json:"id,omitempty"`

	// Register fields. Role distinguishes aggregators from plain slaves;
	// Via names the aggregator a slave also answers through, so the master
	// can group its analyze fan-out into subtrees while keeping this direct
	// connection for fallback asks when that aggregator dies.
	Slave      string   `json:"slave,omitempty"`
	Components []string `json:"components,omitempty"`
	Role       string   `json:"role,omitempty"`
	Via        string   `json:"via,omitempty"`

	// Analyze fields. BudgetMS carries the master's remaining deadline
	// budget as a duration relative to frame arrival: the slave restates it
	// against its own clock, so the propagated deadline is clock-offset
	// corrected by construction (wire latency eats budget, erring safe).
	// Zero means no deadline.
	TV       int64 `json:"tv,omitempty"`
	LookBack int   `json:"lookback,omitempty"`
	BudgetMS int64 `json:"budget_ms,omitempty"`

	// Subtree lists, on an analyze frame sent to an aggregator, the slave
	// names the aggregator must cover; it answers with one Sub entry per
	// requested slave (reports, echoed clock, or a per-slave error) so the
	// master keeps exact per-slave coverage accounting through the tree.
	Subtree []string    `json:"subtree,omitempty"`
	Sub     []subAnswer `json:"sub,omitempty"`

	// Handoff fields: Component names the model being moved, State carries
	// its exported core.MonitorSnapshot (export response and restore
	// request). Replicate frames reuse both — State then carries a
	// core.ReplDelta — plus Seq, the primary's per-component replication
	// sequence number, which the master records as sent on relay and acked on
	// the standby's response; a component is warm-promotable only while the
	// two match.
	Component string          `json:"component,omitempty"`
	State     json.RawMessage `json:"state,omitempty"`
	Seq       uint64          `json:"seq,omitempty"`

	// Shadow lists, on an assign frame, the components this slave stands by
	// for: it keeps (or will receive) shadow monitors for them and drops
	// shadows for anything absent. Like Components, the list is
	// authoritative. ReplReset lists owned components whose standby changed
	// in this placement: the owner forgets its shipped floors so the next
	// replication tick re-ships the full snapshot — without it, a quiet
	// component (no new samples) would never warm its new standby.
	Shadow    []string `json:"shadow,omitempty"`
	ReplReset []string `json:"repl_reset,omitempty"`

	// Reports fields. UsedTV echoes the violation time in the slave's own
	// clock (the requested tv plus the slave's skew): the master subtracts
	// the two to estimate the slave's clock offset and normalize every
	// reported onset back to its own clock before building the propagation
	// chain.
	Reports []core.ComponentReport `json:"reports,omitempty"`
	UsedTV  int64                  `json:"used_tv,omitempty"`

	// Violate fields. A violate frame reports one SLO violation for App,
	// owned by Tenant, detected at TV; BudgetMS (above) optionally bounds
	// how long the client will wait for the verdict. The master answers
	// with a verdict frame whose Verdict payload is a cluster.Verdict.
	Tenant  string          `json:"tenant,omitempty"`
	App     string          `json:"app,omitempty"`
	Verdict json.RawMessage `json:"verdict,omitempty"`

	// Error fields. Code classifies structured failures so the master can
	// react without parsing Err ("overloaded" = shed by slave admission
	// control, "panic" = the analyze handler recovered a panic, and the
	// service-mode intake codes below). RetryAfterMS accompanies
	// codeOverloaded sheds with the daemon's backoff hint, derived from its
	// admission queue depth, so clients stop hot-looping into a saturated
	// peer.
	Err          string `json:"err,omitempty"`
	Code         string `json:"code,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// subAnswer is one subtree slave's outcome inside an aggregator's merged
// reports frame. Exactly one of Reports or Err is meaningful; UsedTV echoes
// the slave's clock (not the aggregator's) so the master's per-slave offset
// normalization is unchanged by the tree, and WaitNS carries the answer
// latency the aggregator measured for the master's latency histogram.
type subAnswer struct {
	Slave   string                 `json:"slave"`
	Reports []core.ComponentReport `json:"reports,omitempty"`
	UsedTV  int64                  `json:"used_tv,omitempty"`
	WaitNS  int64                  `json:"wait_ns,omitempty"`
	Err     string                 `json:"err,omitempty"`
	Code    string                 `json:"code,omitempty"`
}

// Error frame classification codes.
const (
	codeOverloaded    = "overloaded"
	codePanic         = "panic"
	// codeReplFull asks the replication primary for a full-snapshot resend:
	// the standby's shadow is missing (or its Base precondition failed), or
	// the relay could not reach it coherently. The primary reacts by
	// forgetting its shipped floors for the component.
	codeReplFull = "repl_full"
	codeUnknownTenant = "unknown_tenant"
	codeQuota         = "quota"
	codeDraining      = "draining"
	codeNoService     = "no_service"
)

// frameLimit bounds a single frame to keep a misbehaving peer from forcing
// unbounded allocation.
const frameLimit = 4 << 20

// connWriter serializes frame writes to a shared net.Conn. Both daemons
// write one connection from several goroutines (the master's Localize
// fan-out races its serveConn pong path; the slave's report path races
// Ping): without whole-frame serialization those writes can interleave on
// the wire and corrupt the newline-framed stream, especially once the TCP
// stack splits a large frame across partial writes.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func newConnWriter(conn net.Conn) *connWriter { return &connWriter{conn: conn} }

// write marshals env and writes it as one uninterruptible frame.
func (w *connWriter) write(env *envelope, timeout time.Duration) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return writeFrame(w.conn, env, timeout)
}

// writeFrame marshals and writes one newline-terminated JSON frame. Callers
// sharing a connection across goroutines must go through connWriter.
func writeFrame(conn net.Conn, env *envelope, timeout time.Duration) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("cluster: marshal frame: %w", err)
	}
	data = append(data, '\n')
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("cluster: set write deadline: %w", err)
		}
	}
	if _, err := conn.Write(data); err != nil {
		return fmt.Errorf("cluster: write frame: %w", err)
	}
	return nil
}

// readFrame reads one newline-terminated JSON frame.
func readFrame(r *bufio.Reader) (*envelope, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("cluster: malformed frame: %w", err)
	}
	return &env, nil
}

// newReader returns a size-bounded buffered reader for frame parsing.
func newReader(conn net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(conn, 64<<10)
}
