package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateNilAdmitsEverything: the unlimited default (nil gate) admits any
// number of callers without blocking.
func TestGateNilAdmitsEverything(t *testing.T) {
	var g *gate
	for i := 0; i < 100; i++ {
		if !g.tryAcquire() {
			t.Fatal("nil gate refused tryAcquire")
		}
		if err := g.acquire(context.Background()); err != nil {
			t.Fatalf("nil gate acquire: %v", err)
		}
	}
	g.release() // must not panic
}

// TestGateLimit: tryAcquire admits exactly limit callers, and release frees
// a slot for the next.
func TestGateLimit(t *testing.T) {
	g := newGate(2, 0)
	if !g.tryAcquire() || !g.tryAcquire() {
		t.Fatal("gate refused within its limit")
	}
	if g.tryAcquire() {
		t.Fatal("gate admitted past its limit")
	}
	g.release()
	if !g.tryAcquire() {
		t.Fatal("gate refused after a release")
	}
}

// TestGateZeroQueueShedsImmediately: with no waiting room, a full gate sheds
// the caller synchronously with ErrOverloaded.
func TestGateZeroQueueShedsImmediately(t *testing.T) {
	g := newGate(1, 0)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire on a full zero-queue gate = %v, want ErrOverloaded", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("zero-queue shed was not immediate")
	}
}

// TestGateLIFOGrantOrder: release hands the freed slot to the NEWEST waiter —
// the one with the freshest deadline — not the oldest.
func TestGateLIFOGrantOrder(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var entered sync.WaitGroup
	var done sync.WaitGroup
	// Queue three waiters one at a time so their stack order is fixed.
	for i := 1; i <= 3; i++ {
		i := i
		entered.Add(1)
		done.Add(1)
		go func() {
			// Signal "about to block" just before acquire; the sleep below
			// serializes actual queue entry.
			entered.Done()
			if err := g.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			done.Done()
		}()
		entered.Wait()
		waitFor(t, 2*time.Second, func() bool {
			g.mu.Lock()
			defer g.mu.Unlock()
			return len(g.waiters) == i
		}, "waiter to enqueue")
	}
	// Drain: each release grants one waiter; grant order must be 3, 2, 1.
	for i := 0; i < 3; i++ {
		g.release()
		waitFor(t, 2*time.Second, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(order) == i+1
		}, "waiter to be granted")
	}
	done.Wait()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Errorf("grant order = %v, want LIFO [3 2 1]", order)
	}
	g.release() // the last granted waiter's slot
}

// TestGateOverflowShedsOldest: when the queue is full, a new waiter displaces
// the OLDEST queued one, which returns ErrOverloaded.
func TestGateOverflowShedsOldest(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	oldErr := make(chan error, 1)
	go func() { oldErr <- g.acquire(context.Background()) }()
	waitFor(t, 2*time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.waiters) == 1
	}, "first waiter to enqueue")

	newErr := make(chan error, 1)
	go func() { newErr <- g.acquire(context.Background()) }()
	// The overflow sheds the old waiter immediately.
	select {
	case err := <-oldErr:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("displaced waiter got %v, want ErrOverloaded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("displaced waiter never shed")
	}
	// The new waiter is granted once the slot frees.
	g.release()
	select {
	case err := <-newErr:
		if err != nil {
			t.Fatalf("surviving waiter got %v, want grant", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("surviving waiter never granted")
	}
	g.release()
}

// TestGateContextCancelWhileQueued: a waiter whose context expires leaves the
// queue with ctx.Err() and does not leak a slot.
func TestGateContextCancelWhileQueued(t *testing.T) {
	g := newGate(1, 2)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- g.acquire(ctx) }()
	waitFor(t, 2*time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.waiters) == 1
	}, "waiter to enqueue")
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	// The slot was not consumed by the canceled waiter: releasing once must
	// leave the gate fully free again.
	g.release()
	if !g.tryAcquire() {
		t.Fatal("slot leaked to a canceled waiter")
	}
	g.release()
}

// TestGateConcurrentStress hammers one small gate from many goroutines and
// checks the concurrency invariant (never more than limit holders at once)
// and that every successful acquire is paired with a release. Run with -race.
func TestGateConcurrentStress(t *testing.T) {
	const limit = 3
	g := newGate(limit, 2)
	var holders, maxHolders, granted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				err := g.acquire(ctx)
				cancel()
				if err != nil {
					shed.Add(1)
					continue
				}
				granted.Add(1)
				h := holders.Add(1)
				for {
					m := maxHolders.Load()
					if h <= m || maxHolders.CompareAndSwap(m, h) {
						break
					}
				}
				time.Sleep(time.Microsecond)
				holders.Add(-1)
				g.release()
			}
		}()
	}
	wg.Wait()
	if m := maxHolders.Load(); m > limit {
		t.Errorf("observed %d concurrent holders, limit %d", m, limit)
	}
	if granted.Load() == 0 {
		t.Error("stress admitted nothing")
	}
	// After the dust settles the gate must be fully free.
	for i := 0; i < limit; i++ {
		if !g.tryAcquire() {
			t.Fatalf("slot %d leaked after stress (granted=%d shed=%d)", i, granted.Load(), shed.Load())
		}
	}
}
