package cluster

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/cloudsim"
	"fchain/internal/core"
	"fchain/internal/depgraph"
	"fchain/internal/faultnet"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// startTreeCluster boots a master, nAggs aggregators, and one dual-registered
// slave per simulation component (direct to the master plus through its
// aggregator), with the scenario fed up to tv.
func startTreeCluster(t *testing.T, sim *cloudsim.Sim, tv int64, deps *depgraph.Graph, nAggs int, aggOpts ...AggregatorOption) (*Master, []*Aggregator) {
	t.Helper()
	master := NewMaster(core.Config{}, deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	aggs := make([]*Aggregator, nAggs)
	for i := range aggs {
		agg := NewAggregator(aggName(i), aggOpts...)
		if err := agg.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := agg.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agg.Close() })
		aggs[i] = agg
	}
	waitFor(t, 2*time.Second, func() bool {
		master.mu.Lock()
		defer master.mu.Unlock()
		return len(master.aggs) == nAggs
	}, "aggregators to register with the master")

	comps := sim.Components()
	for i, comp := range comps {
		agg := aggs[i%nAggs]
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{}, WithVia(agg.name))
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < series.Len() && series.TimeAt(j) <= tv; j++ {
				if err := sl.Observe(comp, series.TimeAt(j), k, series.At(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := sl.Connect(agg.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == len(comps) }, "tree slaves to register")
	for i, agg := range aggs {
		want := 0
		for j := range comps {
			if j%nAggs == i {
				want++
			}
		}
		agg, want := agg, want
		waitFor(t, 2*time.Second, func() bool { return len(agg.Slaves()) == want }, "subtree registrations")
	}
	return master, aggs
}

func aggName(i int) string { return "agg-" + string(rune('a'+i)) }

// TestTreeTopologyMatchesFlatDiagnosis pins the aggregator tier's merge
// losslessness: the same scenario localized through a flat fan-out and
// through two aggregators must yield byte-identical diagnoses.
func TestTreeTopologyMatchesFlatDiagnosis(t *testing.T) {
	sim, tv, deps := faultScenario(t, 1)

	flatMaster, _ := startCluster(t, sim, tv, deps, nil)
	flat, err := flatMaster.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if names := flat.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("flat diagnosis = %v, want [db]", names)
	}

	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	treeMaster, _ := startTreeCluster(t, sim, tv, deps, 2, WithAggregatorObs(sink))
	tree, err := treeMaster.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if tree.SlavesAnswered != flat.SlavesAnswered || tree.Coverage() != 1 {
		t.Fatalf("tree coverage %v (answered %d), want full", tree.Coverage(), tree.SlavesAnswered)
	}
	if a, b := diagnosisJSON(t, flat), diagnosisJSON(t, tree); !bytes.Equal(a, b) {
		t.Errorf("tree diagnosis differs from flat:\n flat: %s\n tree: %s", a, b)
	}
	// The tree path must actually have been used, not silently fallen back.
	if got := sink.Registry().Counter("fchain_subtree_analyze_total", "").Value(); got < 2 {
		t.Errorf("subtree analyze count = %d, want >= 2 (one per aggregator)", got)
	}
}

// TestAggregatorDeathFallsBackToDirect closes an aggregator before the
// localization: its subtree must be asked over the slaves' direct
// connections, costing nothing but the tree.
func TestAggregatorDeathFallsBackToDirect(t *testing.T) {
	sim, tv, deps := faultScenario(t, 2)
	master, aggs := startTreeCluster(t, sim, tv, deps, 2)
	aggs[0].Close()
	waitFor(t, 2*time.Second, func() bool {
		master.mu.Lock()
		defer master.mu.Unlock()
		return len(master.aggs) == 1
	}, "dead aggregator removal")

	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Fatalf("coverage after aggregator death = %v (missing %v), want 1", res.Coverage(), res.MissingComponents)
	}
	if names := res.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Errorf("diagnosis after aggregator death = %v, want [db]", names)
	}
}

// TestAggregatorPartitionMidLocalize partitions the master↔aggregator link
// after the subtree analyze has already fanned out (triggered from inside the
// first slave's analyze handler): the aggregator can no longer deliver its
// merged answer, so the master must detect the dead link and re-ask every
// subtree member directly — full coverage, correct verdict.
func TestAggregatorPartitionMidLocalize(t *testing.T) {
	sim, tv, deps := faultScenario(t, 3)

	master := NewMaster(core.Config{}, deps,
		WithMasterObs(&obs.Sink{Metrics: obs.NewRegistry()}))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	// The aggregator reaches the master only through a severable proxy.
	proxy, err := faultnet.NewProxy(master.Addr(), faultnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	fab := faultnet.NewFabric()
	fab.Link("master", "agg-a", proxy)

	agg := NewAggregator("agg-a", WithAggregatorBackoff(50*time.Millisecond, 200*time.Millisecond))
	if err := agg.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agg.Close() })
	if err := agg.Connect(proxy.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		master.mu.Lock()
		defer master.mu.Unlock()
		return len(master.aggs) == 1
	}, "aggregator registration")

	comps := sim.Components()
	for _, comp := range comps {
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{}, WithVia("agg-a"))
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < series.Len() && series.TimeAt(j) <= tv; j++ {
				if err := sl.Observe(comp, series.TimeAt(j), k, series.At(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := sl.Connect(agg.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == len(comps) }, "slaves to register")
	waitFor(t, 2*time.Second, func() bool { return len(agg.Slaves()) == len(comps) }, "subtree registrations")

	// Fired by the first analyze that reaches a slave — i.e. after the
	// aggregator's subtree fan-out began — so the partition lands mid-flight.
	var once sync.Once
	hook := func(slave string, tv int64) {
		once.Do(func() { fab.Partition([]string{"master"}, []string{"agg-a"}) })
	}
	slaveAnalyzeHook.Store(&hook)
	defer slaveAnalyzeHook.Store(nil)

	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Fatalf("coverage after mid-localize partition = %v (missing %v), want 1",
			res.Coverage(), res.MissingComponents)
	}
	if names := res.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Errorf("diagnosis after mid-localize partition = %v, want [db]", names)
	}
	if got := master.obs.Registry().Counter("fchain_aggregator_fallbacks_total", "").Value(); got < int64(len(comps)) {
		t.Errorf("aggregator fallbacks = %d, want >= %d (whole subtree re-asked)", got, len(comps))
	}
}
