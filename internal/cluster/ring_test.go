package cluster

import (
	"fmt"
	"math"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("comp-%05d", i)
	}
	return keys
}

func ringWith(members ...string) *Ring {
	r := NewRing(DefaultVnodes)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("slave-%02d", i)
	}
	return out
}

// TestRingBalance pins the distribution guarantee the rebalancer relies on:
// across every cluster size from 3 to 50 slaves, no slave owns more than
// ceil(1.25 × mean) of 10k components at 128 vnodes, and every component is
// placed.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(10000)
	for n := 3; n <= 50; n++ {
		r := ringWith(memberNames(n)...)
		asg := r.AssignBounded(keys, BalanceBound)
		if len(asg) != len(keys) {
			t.Fatalf("n=%d: %d of %d keys placed", n, len(asg), len(keys))
		}
		load := make(map[string]int)
		for _, owner := range asg {
			load[owner]++
		}
		mean := float64(len(keys)) / float64(n)
		bound := int(math.Ceil(BalanceBound * mean))
		for member, c := range load {
			if c > bound {
				t.Errorf("n=%d: member %s owns %d components, bound %d (mean %.1f)", n, member, c, bound, mean)
			}
		}
	}
}

// TestRingMinimalMovement verifies the incremental-rebalance property: a
// join moves about 1/(n+1) of the components (never more than twice that),
// and every component that moves on a leave belonged to the removed member
// or rebalanced under the recomputed load cap.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{3, 8, 20, 49} {
		before := ringWith(memberNames(n)...).AssignBounded(keys, BalanceBound)
		joined := memberNames(n + 1)
		after := ringWith(joined...).AssignBounded(keys, BalanceBound)
		newcomer := joined[n]
		moved, toNewcomer := 0, 0
		for k, owner := range before {
			if after[k] != owner {
				moved++
				if after[k] == newcomer {
					toNewcomer++
				}
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if float64(moved) > 2*ideal {
			t.Errorf("join at n=%d moved %d components, ideal ~%.0f (cap 2x)", n, moved, ideal)
		}
		if toNewcomer == 0 {
			t.Errorf("join at n=%d moved nothing to the new member", n)
		}
		// Leave: removing the newcomer must restore the original placement
		// exactly (assignment is a pure function of the member set).
		r := ringWith(joined...)
		r.Remove(newcomer)
		restored := r.AssignBounded(keys, BalanceBound)
		for k, owner := range before {
			if restored[k] != owner {
				t.Fatalf("leave at n=%d: %s owned by %s, was %s before the join", n, k, restored[k], owner)
			}
		}
	}
}

// TestRingDeterminism pins that placement is a pure function of the member
// and key sets: insertion order must not matter (a restarted master — or a
// second process — recomputes identical assignments), and a handful of
// pinned lookups guard the hash function against accidental change, which
// would otherwise masquerade as a full-cluster rebalance after an upgrade.
func TestRingDeterminism(t *testing.T) {
	keys := ringKeys(500)
	forward := ringWith("a", "b", "c", "d", "e")
	reverse := ringWith("e", "d", "c", "b", "a")
	shuffled := ringWith("c", "a", "e", "b", "d")
	base := forward.AssignBounded(keys, BalanceBound)
	for name, r := range map[string]*Ring{"reverse": reverse, "shuffled": shuffled} {
		got := r.AssignBounded(keys, BalanceBound)
		for k, owner := range base {
			if got[k] != owner {
				t.Fatalf("%s insertion order moved %s: %s != %s", name, k, got[k], owner)
			}
		}
	}
	// Cross-process determinism reduces to hash stability: pin a few owners.
	want := map[string]string{}
	for _, k := range []string{"comp-00000", "comp-00123", "comp-00499"} {
		owner, ok := forward.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s", k)
		}
		want[k] = owner
	}
	again := ringWith("a", "b", "c", "d", "e")
	for k, owner := range want {
		if got, _ := again.Owner(k); got != owner {
			t.Fatalf("recomputed owner of %s differs: %s != %s", k, got, owner)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate shapes the master hits during
// startup and total-eviction windows.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.AssignBounded([]string{"x"}, BalanceBound); len(got) != 0 {
		t.Fatalf("empty ring assigned %v", got)
	}
	r.Add("only")
	if !r.Has("only") || r.Size() != 1 {
		t.Fatal("Add did not register the member")
	}
	if r.Add("only") {
		t.Fatal("duplicate Add reported a change")
	}
	asg := r.AssignBounded(ringKeys(50), BalanceBound)
	for k, owner := range asg {
		if owner != "only" {
			t.Fatalf("%s assigned to %s on a single-member ring", k, owner)
		}
	}
	if len(asg) != 50 {
		t.Fatalf("single member owns %d of 50 keys", len(asg))
	}
	if !r.Remove("only") || r.Remove("only") {
		t.Fatal("Remove bookkeeping wrong")
	}
}
