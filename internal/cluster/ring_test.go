package cluster

import (
	"fmt"
	"math"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("comp-%05d", i)
	}
	return keys
}

func ringWith(members ...string) *Ring {
	r := NewRing(DefaultVnodes)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("slave-%02d", i)
	}
	return out
}

// TestRingBalance pins the distribution guarantee the rebalancer relies on:
// across every cluster size from 3 to 50 slaves, no slave owns more than
// ceil(1.25 × mean) of 10k components at 128 vnodes, and every component is
// placed.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(10000)
	for n := 3; n <= 50; n++ {
		r := ringWith(memberNames(n)...)
		asg := r.AssignBounded(keys, BalanceBound)
		if len(asg) != len(keys) {
			t.Fatalf("n=%d: %d of %d keys placed", n, len(asg), len(keys))
		}
		load := make(map[string]int)
		for _, owner := range asg {
			load[owner]++
		}
		mean := float64(len(keys)) / float64(n)
		bound := int(math.Ceil(BalanceBound * mean))
		for member, c := range load {
			if c > bound {
				t.Errorf("n=%d: member %s owns %d components, bound %d (mean %.1f)", n, member, c, bound, mean)
			}
		}
	}
}

// TestRingMinimalMovement verifies the incremental-rebalance property: a
// join moves about 1/(n+1) of the components (never more than twice that),
// and every component that moves on a leave belonged to the removed member
// or rebalanced under the recomputed load cap.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{3, 8, 20, 49} {
		before := ringWith(memberNames(n)...).AssignBounded(keys, BalanceBound)
		joined := memberNames(n + 1)
		after := ringWith(joined...).AssignBounded(keys, BalanceBound)
		newcomer := joined[n]
		moved, toNewcomer := 0, 0
		for k, owner := range before {
			if after[k] != owner {
				moved++
				if after[k] == newcomer {
					toNewcomer++
				}
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if float64(moved) > 2*ideal {
			t.Errorf("join at n=%d moved %d components, ideal ~%.0f (cap 2x)", n, moved, ideal)
		}
		if toNewcomer == 0 {
			t.Errorf("join at n=%d moved nothing to the new member", n)
		}
		// Leave: removing the newcomer must restore the original placement
		// exactly (assignment is a pure function of the member set).
		r := ringWith(joined...)
		r.Remove(newcomer)
		restored := r.AssignBounded(keys, BalanceBound)
		for k, owner := range before {
			if restored[k] != owner {
				t.Fatalf("leave at n=%d: %s owned by %s, was %s before the join", n, k, restored[k], owner)
			}
		}
	}
}

// TestRingDeterminism pins that placement is a pure function of the member
// and key sets: insertion order must not matter (a restarted master — or a
// second process — recomputes identical assignments), and a handful of
// pinned lookups guard the hash function against accidental change, which
// would otherwise masquerade as a full-cluster rebalance after an upgrade.
func TestRingDeterminism(t *testing.T) {
	keys := ringKeys(500)
	forward := ringWith("a", "b", "c", "d", "e")
	reverse := ringWith("e", "d", "c", "b", "a")
	shuffled := ringWith("c", "a", "e", "b", "d")
	base := forward.AssignBounded(keys, BalanceBound)
	for name, r := range map[string]*Ring{"reverse": reverse, "shuffled": shuffled} {
		got := r.AssignBounded(keys, BalanceBound)
		for k, owner := range base {
			if got[k] != owner {
				t.Fatalf("%s insertion order moved %s: %s != %s", name, k, got[k], owner)
			}
		}
	}
	// Cross-process determinism reduces to hash stability: pin a few owners.
	want := map[string]string{}
	for _, k := range []string{"comp-00000", "comp-00123", "comp-00499"} {
		owner, ok := forward.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s", k)
		}
		want[k] = owner
	}
	again := ringWith("a", "b", "c", "d", "e")
	for k, owner := range want {
		if got, _ := again.Owner(k); got != owner {
			t.Fatalf("recomputed owner of %s differs: %s != %s", k, got, owner)
		}
	}
}

// TestRingStandbyDistinctAndBalanced pins the warm-standby placement
// guarantees the failover path relies on: every key gets a standby distinct
// from its primary, and (with three or more members, where exclusion leaves a
// choice) no member stands by for more than ceil(1.25 × mean) keys.
func TestRingStandbyDistinctAndBalanced(t *testing.T) {
	keys := ringKeys(10000)
	for n := 2; n <= 50; n++ {
		r := ringWith(memberNames(n)...)
		primary := r.AssignBounded(keys, BalanceBound)
		standby := r.AssignStandby(keys, primary, BalanceBound)
		if len(standby) != len(keys) {
			t.Fatalf("n=%d: %d of %d keys got a standby", n, len(standby), len(keys))
		}
		load := make(map[string]int)
		for key, st := range standby {
			if st == primary[key] {
				t.Fatalf("n=%d: key %s has standby == primary (%s)", n, key, st)
			}
			if !r.Has(st) {
				t.Fatalf("n=%d: key %s assigned to non-member standby %q", n, key, st)
			}
			load[st]++
		}
		if n < 3 {
			continue // two members: the single non-primary necessarily takes all
		}
		bound := int(math.Ceil(BalanceBound * float64(len(keys)) / float64(n)))
		for member, c := range load {
			if c > bound {
				t.Errorf("n=%d: member %s stands by for %d keys, bound %d", n, member, c, bound)
			}
		}
	}
}

// TestRingStandbyMinimalMovement verifies standby placement stays incremental:
// a join re-homes about 1/(n+1) of the standbys (never more than three times
// that — a standby can move either because its own arc changed or because its
// key's primary moved onto it), and a leave restores the pre-join placement
// exactly, because the assignment is a pure function of (members, keys,
// primaries).
func TestRingStandbyMinimalMovement(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{3, 8, 20, 49} {
		before := ringWith(memberNames(n)...)
		beforePrimary := before.AssignBounded(keys, BalanceBound)
		beforeStandby := before.AssignStandby(keys, beforePrimary, BalanceBound)

		joined := memberNames(n + 1)
		after := ringWith(joined...)
		afterPrimary := after.AssignBounded(keys, BalanceBound)
		afterStandby := after.AssignStandby(keys, afterPrimary, BalanceBound)

		moved := 0
		for k, st := range beforeStandby {
			if afterStandby[k] != st {
				moved++
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if float64(moved) > 3*ideal {
			t.Errorf("join at n=%d moved %d standbys, ideal ~%.0f (cap 3x)", n, moved, ideal)
		}

		r := ringWith(joined...)
		r.Remove(joined[n])
		restoredPrimary := r.AssignBounded(keys, BalanceBound)
		restoredStandby := r.AssignStandby(keys, restoredPrimary, BalanceBound)
		for k, st := range beforeStandby {
			if restoredStandby[k] != st {
				t.Fatalf("leave at n=%d: %s stood by by %s, was %s before the join", n, k, restoredStandby[k], st)
			}
		}
	}
}

// TestRingStandbyDeterminism pins that standby placement is a pure function of
// the member, key, and primary sets: insertion order must not matter (a
// restarted master recomputes identical standbys, so a promoted shadow is
// always the one that was actually replicated to), and pinned lookups guard
// the placement against accidental hash or walk-order changes.
func TestRingStandbyDeterminism(t *testing.T) {
	keys := ringKeys(500)
	forward := ringWith("a", "b", "c", "d", "e")
	primary := forward.AssignBounded(keys, BalanceBound)
	base := forward.AssignStandby(keys, primary, BalanceBound)
	for name, r := range map[string]*Ring{
		"reverse":  ringWith("e", "d", "c", "b", "a"),
		"shuffled": ringWith("c", "a", "e", "b", "d"),
	} {
		got := r.AssignStandby(keys, r.AssignBounded(keys, BalanceBound), BalanceBound)
		for k, st := range base {
			if got[k] != st {
				t.Fatalf("%s insertion order moved standby of %s: %s != %s", name, k, got[k], st)
			}
		}
	}
	// Cross-process determinism reduces to recomputation stability: a second
	// identically-built ring must agree on every standby.
	again := ringWith("a", "b", "c", "d", "e")
	recomputed := again.AssignStandby(keys, again.AssignBounded(keys, BalanceBound), BalanceBound)
	for _, k := range []string{"comp-00000", "comp-00123", "comp-00499"} {
		if recomputed[k] != base[k] {
			t.Fatalf("recomputed standby of %s differs: %s != %s", k, recomputed[k], base[k])
		}
	}
}

// TestRingStandbyDegenerate covers the shapes where there is nowhere distinct
// to stand by, and the two-member shape where exclusion forces every key onto
// the single other member regardless of balance.
func TestRingStandbyDegenerate(t *testing.T) {
	keys := ringKeys(50)
	empty := NewRing(0)
	if got := empty.AssignStandby(keys, map[string]string{}, BalanceBound); len(got) != 0 {
		t.Fatalf("empty ring assigned standbys: %v", got)
	}
	single := ringWith("only")
	primary := single.AssignBounded(keys, BalanceBound)
	if got := single.AssignStandby(keys, primary, BalanceBound); len(got) != 0 {
		t.Fatalf("single-member ring assigned standbys: %v", got)
	}
	pair := ringWith("left", "right")
	primary = pair.AssignBounded(keys, BalanceBound)
	standby := pair.AssignStandby(keys, primary, BalanceBound)
	if len(standby) != len(keys) {
		t.Fatalf("two-member ring covered %d of %d keys", len(standby), len(keys))
	}
	for k, st := range standby {
		if st == primary[k] {
			t.Fatalf("two-member ring: standby of %s equals its primary %s", k, st)
		}
	}
	// Keys absent from the primary map still get a standby (exclusion of
	// nothing): the master may know a component before it is first placed.
	orphan := pair.AssignStandby([]string{"unplaced"}, map[string]string{}, BalanceBound)
	if len(orphan) != 1 {
		t.Fatalf("unplaced key got no standby: %v", orphan)
	}
}

// TestRingEmptyAndSingle covers the degenerate shapes the master hits during
// startup and total-eviction windows.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.AssignBounded([]string{"x"}, BalanceBound); len(got) != 0 {
		t.Fatalf("empty ring assigned %v", got)
	}
	r.Add("only")
	if !r.Has("only") || r.Size() != 1 {
		t.Fatal("Add did not register the member")
	}
	if r.Add("only") {
		t.Fatal("duplicate Add reported a change")
	}
	asg := r.AssignBounded(ringKeys(50), BalanceBound)
	for k, owner := range asg {
		if owner != "only" {
			t.Fatalf("%s assigned to %s on a single-member ring", k, owner)
		}
	}
	if len(asg) != 50 {
		t.Fatalf("single member owns %d of 50 keys", len(asg))
	}
	if !r.Remove("only") || r.Remove("only") {
		t.Fatal("Remove bookkeeping wrong")
	}
}
