package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/cloudsim"
	"fchain/internal/core"
	"fchain/internal/depgraph"
	"fchain/internal/metric"
)

// startCluster boots a master plus one slave per component of the given
// simulation and feeds all recorded samples up to tv.
func startCluster(t *testing.T, sim *cloudsim.Sim, tv int64, deps *depgraph.Graph, skews map[string]int64) (*Master, []*Slave) {
	t.Helper()
	master := NewMaster(core.Config{}, deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	var slaves []*Slave
	for _, comp := range sim.Components() {
		var opts []SlaveOption
		if skew, ok := skews[comp]; ok {
			opts = append(opts, WithClockSkew(skew))
		}
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{}, opts...)
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := sl.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
		slaves = append(slaves, sl)
	}
	// Wait for registrations to land.
	deadline := time.Now().Add(2 * time.Second)
	for len(master.Slaves()) < len(slaves) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(master.Slaves()); got != len(slaves) {
		t.Fatalf("only %d of %d slaves registered", got, len(slaves))
	}
	return master, slaves
}

// faultScenario runs RUBiS with a CPU hog at the database and returns the
// sim and violation time.
func faultScenario(t *testing.T, seed int64) (*cloudsim.Sim, int64, *depgraph.Graph) {
	t.Helper()
	sim, err := cloudsim.New(apps.RUBiS(seed), seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(cloudsim.NewCPUHog(1700, 1.7, apps.DB)); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(2400)
	tv, found := sim.FirstViolation(1700, 8)
	if !found {
		t.Fatal("scenario produced no violation")
	}
	deps := depgraph.Discover(sim.DependencyTrace(600, seed), depgraph.DiscoverConfig{})
	return sim, tv, deps
}

func TestDistributedLocalization(t *testing.T) {
	sim, tv, deps := faultScenario(t, 1)
	master, _ := startCluster(t, sim, tv, deps, nil)
	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Diagnosis.CulpritNames()
	if len(names) != 1 || names[0] != apps.DB {
		t.Errorf("distributed diagnosis = %v, want [db]", names)
	}
}

func TestDistributedToleratesClockSkew(t *testing.T) {
	// Shift one slave's clock by ±1s: the paper's claim is that FChain
	// tolerates small skews because propagation delays are several seconds.
	sim, tv, deps := faultScenario(t, 2)
	skews := map[string]int64{apps.Web: 1, apps.App1: -1}
	master, _ := startCluster(t, sim, tv, deps, skews)
	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Diagnosis.CulpritNames()
	if len(names) != 1 || names[0] != apps.DB {
		t.Errorf("skewed diagnosis = %v, want [db]", names)
	}
}

func TestLocalizeNoSlaves(t *testing.T) {
	master := NewMaster(core.Config{}, nil)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Localize(context.Background(), 100); err != ErrNoSlaves {
		t.Errorf("Localize without slaves = %v, want ErrNoSlaves", err)
	}
}

func TestSlaveDropDuringLocalize(t *testing.T) {
	sim, tv, deps := faultScenario(t, 1)
	master, slaves := startCluster(t, sim, tv, deps, nil)
	// Kill the slave monitoring app2; the master must still localize from
	// the remaining reports.
	for _, sl := range slaves {
		if sl.Name() == "host-"+apps.App2 {
			sl.Close()
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(master.Slaves()) > 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Diagnosis.CulpritNames()
	if len(names) != 1 || names[0] != apps.DB {
		t.Errorf("diagnosis after slave drop = %v, want [db]", names)
	}
}

func TestMalformedFrameDropsConnection(t *testing.T) {
	master := NewMaster(core.Config{}, nil)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	conn, err := net.Dial("tcp", master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The master must drop the connection without registering anything.
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected the master to close a malformed connection")
	}
	if got := master.Slaves(); len(got) != 0 {
		t.Errorf("malformed peer registered: %v", got)
	}
}

func TestSlaveRejectsUnknownComponent(t *testing.T) {
	sl := NewSlave("h", []string{"a"}, core.Config{})
	if err := sl.Observe("ghost", 0, metric.CPU, 1); err == nil {
		t.Error("observing unknown component should error")
	}
}

func TestSlaveAnswersUnknownRequestType(t *testing.T) {
	master := NewMaster(core.Config{}, nil)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	// Raw fake master: accept a slave and send it garbage-typed request.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sl := NewSlave("h", []string{"a"}, core.Config{})
	errCh := make(chan error, 1)
	go func() { errCh <- sl.Connect(ln.Addr().String()) }()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	r := newReader(conn)
	if _, err := readFrame(r); err != nil { // registration
		t.Fatal(err)
	}
	if err := writeFrame(conn, &envelope{Type: "bogus", ID: 7}, time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != typeError || resp.ID != 7 || !strings.Contains(resp.Err, "unknown") {
		t.Errorf("unexpected response: %+v", resp)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := envelope{Type: typeAnalyze, ID: 3, TV: 100, LookBack: 50}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var back envelope
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Type != env.Type || back.ID != env.ID || back.TV != env.TV || back.LookBack != env.LookBack {
		t.Errorf("roundtrip mismatch: %+v vs %+v", back, env)
	}
}

func TestSlavePing(t *testing.T) {
	master := NewMaster(core.Config{}, nil)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	sl := NewSlave("h", []string{"a"}, core.Config{})
	if err := sl.Ping(time.Second); err == nil {
		t.Error("ping before connect should error")
	}
	if err := sl.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	if err := sl.Ping(2 * time.Second); err != nil {
		t.Errorf("ping failed: %v", err)
	}
	// After the master goes away, pings must fail.
	master.Close()
	if err := sl.Ping(500 * time.Millisecond); err == nil {
		t.Error("ping after master shutdown should fail")
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	master := NewMaster(core.Config{}, nil)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	var locals []*Slave
	for i := 0; i < 3; i++ {
		sl := NewSlave(fmt.Sprintf("h%d", i), []string{fmt.Sprintf("c%d", i)}, core.Config{})
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		locals = append(locals, sl)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(master.Slaves()) < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, sl := range locals {
		if err := sl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
	// Goroutines must drain back to (roughly) the baseline.
	deadline = time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestMasterHistory(t *testing.T) {
	sim, tv, deps := faultScenario(t, 1)
	master, _ := startCluster(t, sim, tv, deps, nil)
	if len(master.History()) != 0 {
		t.Fatal("fresh master should have empty history")
	}
	if _, err := master.Localize(context.Background(), tv); err != nil {
		t.Fatal(err)
	}
	if _, err := master.Localize(context.Background(), tv); err != nil {
		t.Fatal(err)
	}
	hist := master.History()
	if len(hist) != 2 {
		t.Fatalf("history = %d entries, want 2", len(hist))
	}
	if hist[0].TV != tv || len(hist[0].Diagnosis.CulpritNames()) == 0 {
		t.Errorf("history entry malformed: %+v", hist[0])
	}
}
