// Package eval is the experiment harness that regenerates every table and
// figure of the FChain paper's evaluation (§III): it runs fault-injection
// campaigns on the simulated benchmarks, applies each localization scheme
// to identical trial data, and aggregates precision/recall.
package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"fchain/internal/apps"
	"fchain/internal/baseline"
	"fchain/internal/cloudsim"
	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// Outcome accumulates localization counts across trials.
type Outcome struct {
	TP int // correctly pinpointed faulty components
	FP int // normal components pinpointed as faulty
	FN int // faulty components missed
}

// Add merges another outcome.
func (o *Outcome) Add(other Outcome) {
	o.TP += other.TP
	o.FP += other.FP
	o.FN += other.FN
}

// Precision returns TP/(TP+FP), or 0 when nothing was pinpointed.
func (o Outcome) Precision() float64 {
	if o.TP+o.FP == 0 {
		return 0
	}
	return float64(o.TP) / float64(o.TP+o.FP)
}

// Recall returns TP/(TP+FN). When there was nothing to find (TP+FN == 0,
// which by Score's construction means the ground truth was empty — a
// false-alarm trap), recall is vacuously 1: missing nothing is not a miss.
// Precision still penalizes any culprit blamed on such a trial, since every
// pinpointed component is a false positive against an empty truth.
func (o Outcome) Recall() float64 {
	if o.TP+o.FN == 0 {
		return 1
	}
	return float64(o.TP) / float64(o.TP+o.FN)
}

// Score compares pinpointed components against the ground truth. An empty
// truth (a false-alarm trap) makes every pinpointed component a false
// positive; with nothing pinpointed either, the outcome is all-zero
// (precision 0/0 reported as 0, recall vacuously 1).
func Score(pinpointed, truth []string) Outcome {
	t := make(map[string]bool, len(truth))
	for _, c := range truth {
		t[c] = true
	}
	var o Outcome
	seen := make(map[string]bool, len(pinpointed))
	for _, c := range pinpointed {
		if seen[c] {
			continue
		}
		seen[c] = true
		if t[c] {
			o.TP++
		} else {
			o.FP++
		}
	}
	for _, c := range truth {
		if !seen[c] {
			o.FN++
		}
	}
	return o
}

// AppBuilder constructs a benchmark application spec for a seed.
type AppBuilder func(seed int64) cloudsim.AppSpec

// Benchmark couples an application with its fault catalog.
type Benchmark struct {
	Name   string
	Build  AppBuilder
	Faults []apps.FaultCase
}

// Benchmarks returns the paper's three benchmark systems.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Name: "rubis", Build: apps.RUBiS, Faults: apps.RUBiSFaults()},
		{Name: "systems", Build: apps.SystemS, Faults: apps.SystemSFaults()},
		{Name: "hadoop", Build: apps.Hadoop, Faults: apps.HadoopFaults()},
	}
}

// TrialBundle is one completed fault-injection run plus its ground truth.
type TrialBundle struct {
	Trial  *baseline.Trial
	Truth  []string
	Fault  string
	Seed   int64
	Inject int64
}

// RunConfig controls trial generation.
type RunConfig struct {
	// InjectMin/InjectMax bound the random fault injection time. The paper
	// injects at a random instant during one-hour runs; the slave models
	// are assumed warm (defaults 1200 and 2400).
	InjectMin, InjectMax int64
	// Horizon is how long past the injection the run may continue while
	// waiting for an SLO violation (default 1100).
	Horizon int64
	// SustainSec is the consecutive-violation requirement for anomaly
	// detection (default 8): production detectors smooth the SLO signal
	// before alarming, so localization is triggered a few seconds into the
	// manifestation, not on the first bad sample.
	SustainSec int
	// DepTraceSec is the offline dependency-capture duration (default 600).
	DepTraceSec int
	// Workers bounds how many fault-injection runs of a campaign execute
	// concurrently: 0 uses GOMAXPROCS, 1 forces serial execution, and any
	// other value is the cap. Every run is seeded independently and results
	// are assembled in seed order, so the output is identical at any worker
	// count.
	Workers int
	// OmitTiming drops wall-clock measurement lines from figure reports so
	// that output is byte-stable across machines and worker counts (used by
	// the parallel-equivalence tests and regression diffs).
	OmitTiming bool
}

// workers resolves the effective campaign concurrency. Zero means "all
// cores, decided now": the zero value is never rewritten by withDefaults, so
// a serialized RunConfig does not pin the core count of the machine that
// wrote it.
func (c RunConfig) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

func (c RunConfig) withDefaults() RunConfig {
	if c.InjectMin <= 0 {
		c.InjectMin = 1200
	}
	if c.InjectMax <= c.InjectMin {
		c.InjectMax = c.InjectMin + 1200
	}
	if c.Horizon <= 0 {
		c.Horizon = 1100
	}
	if c.SustainSec <= 0 {
		c.SustainSec = 8
	}
	if c.DepTraceSec <= 0 {
		c.DepTraceSec = 600
	}
	return c
}

// ErrNoViolation reports a run whose fault never produced a detectable SLO
// violation within the horizon; campaigns count and skip such runs.
type ErrNoViolation struct {
	Fault string
	Seed  int64
}

func (e *ErrNoViolation) Error() string {
	return fmt.Sprintf("eval: fault %s (seed %d) produced no SLO violation", e.Fault, e.Seed)
}

// RunTrial executes one fault-injection run: build the application, inject
// the fault at a seed-derived random time, wait for the SLO violation, and
// package everything every scheme needs.
func RunTrial(b Benchmark, fc apps.FaultCase, seed int64, cfg RunConfig) (*TrialBundle, error) {
	cfg = cfg.withDefaults()
	sim, err := cloudsim.New(b.Build(seed), seed)
	if err != nil {
		return nil, fmt.Errorf("eval: build %s: %w", b.Name, err)
	}
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	inject := cfg.InjectMin + rng.Int63n(cfg.InjectMax-cfg.InjectMin+1)
	fault := fc.Make(inject, rng)
	if err := sim.Inject(fault); err != nil {
		return nil, fmt.Errorf("eval: inject: %w", err)
	}
	sim.RunUntil(inject + cfg.Horizon)
	tv, found := sim.FirstViolation(inject, cfg.SustainSec)
	if !found {
		return nil, &ErrNoViolation{Fault: fc.Name, Seed: seed}
	}

	lookBack := fc.LookBack
	if lookBack <= 0 {
		lookBack = 100
	}
	series := make(map[string]map[metric.Kind]*timeseries.Series, len(sim.Components()))
	for _, comp := range sim.Components() {
		series[comp] = make(map[metric.Kind]*timeseries.Series, metric.NumKinds)
		for _, k := range metric.Kinds {
			s, err := sim.Series(comp, k)
			if err != nil {
				return nil, err
			}
			series[comp][k] = s.Window(s.Start(), tv+1)
		}
	}
	deps := depgraph.Discover(sim.DependencyTrace(cfg.DepTraceSec, seed), depgraph.DiscoverConfig{})
	truth := fault.Targets()
	if gt, ok := fault.(cloudsim.GroundTruther); ok {
		truth = gt.GroundTruth()
	}
	return &TrialBundle{
		Trial: &baseline.Trial{
			Components: sim.Components(),
			Series:     series,
			TV:         tv,
			LookBack:   lookBack,
			Topology:   sim.TopologyGraph(),
			Deps:       deps,
			Sim:        sim,
		},
		Truth:  truth,
		Fault:  fc.Name,
		Seed:   seed,
		Inject: inject,
	}, nil
}

// Campaign runs N seeds of one fault case, returning the completed trials
// (skipping runs without violations) and the skip count.
//
// Runs are independent — each is a pure function of (benchmark, fault,
// seed, cfg) — so they execute on cfg.Workers goroutines. Results are
// collected per seed and assembled in seed order afterwards, which makes
// the returned trials, skip count, and any error exactly what a serial
// loop would have produced.
func Campaign(b Benchmark, fc apps.FaultCase, runs int, cfg RunConfig) ([]*TrialBundle, int, error) {
	workers := cfg.workers()
	if workers > runs {
		workers = runs
	}
	type slot struct {
		tb  *TrialBundle
		err error
	}
	results := make([]slot, runs)
	if workers <= 1 {
		for seed := int64(1); seed <= int64(runs); seed++ {
			tb, err := RunTrial(b, fc, seed, cfg)
			results[seed-1] = slot{tb: tb, err: err}
		}
	} else {
		seeds := make(chan int64)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seed := range seeds {
					tb, err := RunTrial(b, fc, seed, cfg)
					results[seed-1] = slot{tb: tb, err: err}
				}
			}()
		}
		for seed := int64(1); seed <= int64(runs); seed++ {
			seeds <- seed
		}
		close(seeds)
		wg.Wait()
	}
	// Seed-order assembly replays serial semantics: a hard error at seed s
	// returns with only the skips observed before s, exactly as the serial
	// loop would have stopped there.
	var out []*TrialBundle
	skipped := 0
	for _, r := range results {
		if r.err != nil {
			var nv *ErrNoViolation
			if asNoViolation(r.err, &nv) {
				skipped++
				continue
			}
			return nil, skipped, r.err
		}
		out = append(out, r.tb)
	}
	return out, skipped, nil
}

func asNoViolation(err error, target **ErrNoViolation) bool {
	nv, ok := err.(*ErrNoViolation)
	if ok {
		*target = nv
	}
	return ok
}

// EvaluateScheme applies one scheme to every trial and aggregates the
// outcome.
func EvaluateScheme(s baseline.Scheme, trials []*TrialBundle) (Outcome, error) {
	var total Outcome
	for _, tb := range trials {
		pinned, err := s.Localize(tb.Trial)
		if err != nil {
			return Outcome{}, fmt.Errorf("eval: %s on %s/seed %d: %w", s.Name(), tb.Fault, tb.Seed, err)
		}
		total.Add(Score(pinned, tb.Truth))
	}
	return total, nil
}

// SchemeResult pairs a scheme with its aggregate outcome.
type SchemeResult struct {
	Scheme  string
	Outcome Outcome
}

// EvaluateAll applies several schemes to the same trials.
func EvaluateAll(schemes []baseline.Scheme, trials []*TrialBundle) ([]SchemeResult, error) {
	out := make([]SchemeResult, 0, len(schemes))
	for _, s := range schemes {
		o, err := EvaluateScheme(s, trials)
		if err != nil {
			return nil, err
		}
		out = append(out, SchemeResult{Scheme: s.Name(), Outcome: o})
	}
	return out, nil
}

// BestOf returns, for a swept scheme family, the result with the highest
// precision+recall sum — the operating point a practitioner would pick,
// used when a figure reports one point per scheme.
func BestOf(results []SchemeResult) SchemeResult {
	if len(results) == 0 {
		return SchemeResult{}
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Outcome.Precision()+r.Outcome.Recall() > best.Outcome.Precision()+best.Outcome.Recall() {
			best = r
		}
	}
	return best
}

// SortResults orders results by descending precision+recall for stable
// reporting.
func SortResults(results []SchemeResult) {
	sort.SliceStable(results, func(i, j int) bool {
		si := results[i].Outcome.Precision() + results[i].Outcome.Recall()
		sj := results[j].Outcome.Precision() + results[j].Outcome.Recall()
		if si != sj {
			return si > sj
		}
		return results[i].Scheme < results[j].Scheme
	})
}
