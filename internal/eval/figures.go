package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fchain/internal/apps"
	"fchain/internal/baseline"
	"fchain/internal/changepoint"
	"fchain/internal/cloudsim"
	"fchain/internal/core"
	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
	"fchain/internal/workload"
)

// DefaultHistogramThresholds, DefaultNetMedicDeltas, and
// DefaultFixedThresholds are the sweep grids used to trace the ROC curves.
var (
	DefaultHistogramThresholds = []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}
	DefaultNetMedicDeltas      = []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75}
	DefaultFixedThresholds     = []float64{0.05, 0.2, 1, 5, 20, 80, 320}
)

// ComparisonSchemes returns the single-point schemes of the accuracy
// figures: FChain, Topology, Dependency, and PAL.
func ComparisonSchemes() []baseline.Scheme {
	return []baseline.Scheme{
		&baseline.FChain{},
		&baseline.Topology{},
		&baseline.Dependency{},
		&baseline.PAL{},
	}
}

// rocLine renders sweep results as an ROC point series "(recall,precision)".
func rocLine(name string, results []SchemeResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-12s roc:", name)
	for _, r := range results {
		fmt.Fprintf(&sb, " (%.2f,%.2f)", r.Outcome.Recall(), r.Outcome.Precision())
	}
	best := BestOf(results)
	fmt.Fprintf(&sb, "  best P=%.2f R=%.2f", best.Outcome.Precision(), best.Outcome.Recall())
	return sb.String()
}

func pointLine(r SchemeResult) string {
	return fmt.Sprintf("  %-12s P=%.2f R=%.2f (tp=%d fp=%d fn=%d)",
		r.Scheme, r.Outcome.Precision(), r.Outcome.Recall(),
		r.Outcome.TP, r.Outcome.FP, r.Outcome.FN)
}

// AccuracyFigure reproduces one ROC comparison figure (Figs. 6-10): for each
// fault of the benchmark subset it evaluates every scheme on the same
// trials and renders precision/recall.
func AccuracyFigure(title string, b Benchmark, faults []apps.FaultCase, runs int, cfg RunConfig) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s, %d runs per fault\n", title, b.Name, runs)
	for _, fc := range faults {
		trials, skipped, err := Campaign(b, fc, runs, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "fault %s (%d trials, %d without violation):\n", fc.Name, len(trials), skipped)
		if len(trials) == 0 {
			continue
		}
		start := time.Now()
		single, err := EvaluateAll(ComparisonSchemes(), trials)
		if err != nil {
			return "", err
		}
		perTrial := time.Since(start) / time.Duration(len(trials)*len(ComparisonSchemes()))
		for _, r := range single {
			sb.WriteString(pointLine(r) + "\n")
		}
		// The wall-time line is the only machine-dependent text in the
		// accuracy figures; OmitTiming drops it so parallel and serial
		// regenerations can be compared byte for byte.
		if !cfg.OmitTiming {
			fmt.Fprintf(&sb, "  localization wall time: %v per trial (paper: \"within a few seconds\")\n",
				perTrial.Round(time.Millisecond))
		}
		hist, err := EvaluateAll(baseline.HistogramSweep(DefaultHistogramThresholds), trials)
		if err != nil {
			return "", err
		}
		sb.WriteString(rocLine("histogram", hist) + "\n")
		nm, err := EvaluateAll(baseline.NetMedicSweep(DefaultNetMedicDeltas), trials)
		if err != nil {
			return "", err
		}
		sb.WriteString(rocLine("netmedic", nm) + "\n")
	}
	return sb.String(), nil
}

// Figure6 — RUBiS single-component faults (MemLeak, CpuHog, NetHog).
func Figure6(runs int, cfg RunConfig) (string, error) {
	b := Benchmarks()[0]
	return AccuracyFigure("Figure 6: single-component fault localization accuracy", b, b.Faults[:3], runs, cfg)
}

// Figure7 — System S single-component faults (MemLeak, CpuHog, Bottleneck).
func Figure7(runs int, cfg RunConfig) (string, error) {
	b := Benchmarks()[1]
	return AccuracyFigure("Figure 7: single-component fault localization accuracy", b, b.Faults[:3], runs, cfg)
}

// Figure8 — RUBiS multi-component faults (OffloadBug, LBBug).
func Figure8(runs int, cfg RunConfig) (string, error) {
	b := Benchmarks()[0]
	return AccuracyFigure("Figure 8: multi-component fault localization accuracy", b, b.Faults[3:], runs, cfg)
}

// Figure9 — System S multi-component faults (concurrent MemLeak/CpuHog).
func Figure9(runs int, cfg RunConfig) (string, error) {
	b := Benchmarks()[1]
	return AccuracyFigure("Figure 9: multi-component fault localization accuracy", b, b.Faults[3:], runs, cfg)
}

// Figure10 — Hadoop multi-component faults (concurrent MemLeak, CpuHog,
// DiskHog on all map nodes).
func Figure10(runs int, cfg RunConfig) (string, error) {
	b := Benchmarks()[2]
	return AccuracyFigure("Figure 10: multi-component fault localization accuracy", b, b.Faults, runs, cfg)
}

// Figure2 reproduces the abnormal change propagation walk-through: a
// MemLeak at PE3 of System S propagates PE3 → PE6 → PE2 (back-pressure for
// the last hop). It reports the onset FChain assigns to each abnormal PE
// and the resulting chain.
func Figure2(seed int64) (string, error) {
	sim, err := cloudsim.New(apps.SystemS(seed), seed)
	if err != nil {
		return "", err
	}
	const inject = 1400
	fault := cloudsim.NewMemLeak(inject, 30, "pe3")
	if err := sim.Inject(fault); err != nil {
		return "", err
	}
	sim.RunUntil(inject + 600)
	tv, found := sim.FirstViolation(inject, 3)
	if !found {
		return "", fmt.Errorf("eval: figure 2 scenario produced no violation")
	}
	// The figure illustrates the complete propagation path, so analyze a
	// couple of minutes after detection with a window covering the whole
	// cascade (PE6's buffer fill and PE2's back-pressure take tens of
	// seconds after PE3's own manifestation).
	analyzeAt := tv + 120
	diag, err := diagnoseSim(sim, analyzeAt, 300, depgraph.NewGraph())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: abnormal change propagation in System S (MemLeak at pe3, injected t=%d, tv=%d, analyzed at %d)\n", inject, tv, analyzeAt)
	fmt.Fprintf(&sb, "propagation chain (onset order):")
	for _, r := range diag.Chain {
		fmt.Fprintf(&sb, " %s@%d", r.Component, r.Onset)
	}
	fmt.Fprintf(&sb, "\npinpointed: %s\n", strings.Join(diag.CulpritNames(), ", "))
	return sb.String(), nil
}

// diagnoseSim feeds a finished simulation into a fresh localizer.
func diagnoseSim(sim *cloudsim.Sim, tv int64, lookBack int, deps *depgraph.Graph) (core.Diagnosis, error) {
	cfg := core.Config{LookBack: lookBack}
	loc := core.NewLocalizer(cfg, sim.Components())
	for _, comp := range sim.Components() {
		for _, k := range metric.Kinds {
			s, err := sim.Series(comp, k)
			if err != nil {
				return core.Diagnosis{}, err
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					return core.Diagnosis{}, err
				}
			}
		}
	}
	return loc.Localize(tv, deps), nil
}

// Figure3 reproduces the change point selection contrast: raw CUSUM change
// points on the faulty map node's DiskWrite versus a normal reduce node's
// CPU in a Hadoop run with a DiskHog, and which points FChain's selection
// keeps.
func Figure3(seed int64) (string, error) {
	sim, err := cloudsim.New(apps.Hadoop(seed), seed)
	if err != nil {
		return "", err
	}
	const inject = 1400
	fault := cloudsim.NewDiskHog(inject, 59.4, 300, apps.HadoopMaps...)
	if err := sim.Inject(fault); err != nil {
		return "", err
	}
	sim.RunUntil(inject + 900)
	tv, found := sim.FirstViolation(inject, 3)
	if !found {
		return "", fmt.Errorf("eval: figure 3 scenario produced no violation")
	}
	const lookBack = 500
	describe := func(comp string, k metric.Kind) (string, int, bool, error) {
		s, err := sim.Series(comp, k)
		if err != nil {
			return "", 0, false, err
		}
		w := s.Window(tv-lookBack, tv+1)
		smoothed := timeseries.Smooth(w.Values(), 5)
		points := changepoint.Detect(smoothed, changepoint.Config{})
		// FChain selection for the same metric.
		cfg := core.Config{LookBack: lookBack}
		mon := core.NewMonitor(comp, cfg)
		full, _ := sim.Series(comp, k)
		for i := 0; i < full.Len() && full.TimeAt(i) <= tv; i++ {
			if err := mon.Observe(full.TimeAt(i), k, full.At(i)); err != nil {
				return "", 0, false, err
			}
		}
		report := mon.Analyze(tv)
		selected := false
		for _, ch := range report.Changes {
			if ch.Metric == k {
				selected = true
			}
		}
		return fmt.Sprintf("%s/%s: %d raw change points, abnormal selected: %v", comp, k, len(points), selected),
			len(points), selected, nil
	}
	faulty, _, faultySel, err := describe("map1", metric.DiskWrite)
	if err != nil {
		return "", err
	}
	normal, _, normalSel, err := describe("reduce1", metric.CPU)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: abnormal change point selection (Hadoop DiskHog, tv=%d, W=%d)\n", tv, lookBack)
	sb.WriteString("  " + faulty + "\n")
	sb.WriteString("  " + normal + "\n")
	fmt.Fprintf(&sb, "  expectation: faulty map selected=%v (want true), normal reduce selected=%v (want false)\n",
		faultySel, normalSel)
	return sb.String(), nil
}

// Figure4 reproduces the expected-prediction-error illustration: over a
// CPU-usage-like series whose burstiness varies, the FFT-based expected
// error tracks the local burstiness.
func Figure4(seed int64) (string, error) {
	// A series that alternates between calm and bursty phases.
	trace := workload.NewSynthetic(workload.ClarkNet(), 1200, seed)
	series := make([]float64, 1200)
	for i := range series {
		series[i] = trace.Rate(int64(i)) / 4 // scale into a CPU%-like range
	}
	var sb strings.Builder
	sb.WriteString("Figure 4: expected prediction error follows burstiness (CPU usage)\n")
	sb.WriteString("  window_end  local_std  expected_err\n")
	var rows []burstRow
	cfg := core.DefaultConfig()
	for end := 100; end <= 1200; end += 100 {
		w := series[end-41 : end]
		std := timeseries.Std(w)
		exp, err := core.ExpectedErrorForWindow(w, cfg)
		if err != nil {
			return "", err
		}
		rows = append(rows, burstRow{std: std, exp: exp})
		fmt.Fprintf(&sb, "  %10d  %9.3f  %12.3f\n", end, std, exp)
	}
	// Report the rank correlation between burstiness and expected error.
	corr := rankCorrelation(rows)
	fmt.Fprintf(&sb, "  rank correlation(local burstiness, expected error) = %.2f (paper: strongly positive)\n", corr)
	return sb.String(), nil
}

// burstRow pairs a window's burstiness with its expected error.
type burstRow struct{ std, exp float64 }

func rankCorrelation(rows []burstRow) float64 {
	n := len(rows)
	if n < 2 {
		return 0
	}
	rank := func(key func(int) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return key(idx[a]) < key(idx[b]) })
		r := make([]float64, n)
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	rs := rank(func(i int) float64 { return rows[i].std })
	re := rank(func(i int) float64 { return rows[i].exp })
	var d2 float64
	for i := 0; i < n; i++ {
		d := rs[i] - re[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1))
}

// Figure5 reproduces the RUBiS pinpointing walk-through: a fault at an
// application server, the propagation chain with onsets, and the role of
// the dependency graph in dismissing the spurious app1→app2 propagation.
func Figure5(seed int64) (string, error) {
	sim, err := cloudsim.New(apps.RUBiS(seed), seed)
	if err != nil {
		return "", err
	}
	const inject = 1400
	fault := cloudsim.NewBottleneck(inject, 0.10, apps.App1)
	if err := sim.Inject(fault); err != nil {
		return "", err
	}
	sim.RunUntil(inject + 700)
	tv, found := sim.FirstViolation(inject, 3)
	if !found {
		return "", fmt.Errorf("eval: figure 5 scenario produced no violation")
	}
	deps := depgraph.Discover(sim.DependencyTrace(600, seed), depgraph.DiscoverConfig{})
	diag, err := diagnoseSim(sim, tv, 100, deps)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: RUBiS pinpointing walk-through (fault at %s, injected t=%d, tv=%d)\n", apps.App1, inject, tv)
	fmt.Fprintf(&sb, "discovered dependencies: %s\n", deps)
	fmt.Fprintf(&sb, "propagation chain:")
	for _, r := range diag.Chain {
		fmt.Fprintf(&sb, " %s@%d", r.Component, r.Onset)
	}
	fmt.Fprintf(&sb, "\npinpointed: %s\n", diag)
	return sb.String(), nil
}

// Figure11 reproduces the online validation study on the two hardest
// System S faults (Bottleneck and concurrent CpuHog): FChain with and
// without validation.
func Figure11(runs int, cfg RunConfig) (string, error) {
	b := Benchmarks()[1]
	hard := []apps.FaultCase{b.Faults[2], b.Faults[4]} // bottleneck, concurrent-cpuhog
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11: online validation effectiveness — %s, %d runs per fault\n", b.Name, runs)
	for _, fc := range hard {
		trials, skipped, err := Campaign(b, fc, runs, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "fault %s (%d trials, %d skipped):\n", fc.Name, len(trials), skipped)
		if len(trials) == 0 {
			continue
		}
		schemes := []baseline.Scheme{&baseline.FChain{}, &baseline.FChain{Validate: true}}
		results, err := EvaluateAll(schemes, trials)
		if err != nil {
			return "", err
		}
		for _, r := range results {
			sb.WriteString(pointLine(r) + "\n")
		}
	}
	return sb.String(), nil
}

// Figure12 reproduces the Fixed-Filtering comparison on LBBug (RUBiS) and
// DiskHog (Hadoop): the fixed threshold sweep against adaptive FChain.
func Figure12(runs int, cfg RunConfig) (string, error) {
	rubis := Benchmarks()[0]
	hadoop := Benchmarks()[2]
	cases := []struct {
		b  Benchmark
		fc apps.FaultCase
	}{
		{rubis, rubis.Faults[4]},   // lbbug
		{hadoop, hadoop.Faults[2]}, // concurrent-diskhog
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 12: Fixed-Filtering threshold sensitivity, %d runs per fault\n", runs)
	for _, c := range cases {
		trials, skipped, err := Campaign(c.b, c.fc, runs, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "fault %s/%s (%d trials, %d skipped):\n", c.b.Name, c.fc.Name, len(trials), skipped)
		if len(trials) == 0 {
			continue
		}
		fc, err := EvaluateScheme(&baseline.FChain{}, trials)
		if err != nil {
			return "", err
		}
		sb.WriteString(pointLine(SchemeResult{Scheme: "fchain", Outcome: fc}) + "\n")
		fixed, err := EvaluateAll(baseline.FixedFilterSweep(DefaultFixedThresholds), trials)
		if err != nil {
			return "", err
		}
		for _, r := range fixed {
			sb.WriteString(pointLine(r) + "\n")
		}
	}
	return sb.String(), nil
}

// Table1 reproduces the sensitivity study: precision/recall of FChain under
// different look-back windows and concurrency thresholds, on NetHog
// (RUBiS), CpuHog (System S), and DiskHog (Hadoop).
func Table1(runs int, cfg RunConfig) (string, error) {
	bs := Benchmarks()
	cases := []struct {
		b  Benchmark
		fc apps.FaultCase
	}{
		{bs[0], bs[0].Faults[2]}, // nethog
		{bs[1], bs[1].Faults[1]}, // cpuhog
		{bs[2], bs[2].Faults[2]}, // concurrent-diskhog
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: sensitivity to W and the concurrency threshold, %d runs per cell\n", runs)
	for _, c := range cases {
		trials, skipped, err := Campaign(c.b, c.fc, runs, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%s/%s (%d trials, %d skipped):\n", c.b.Name, c.fc.Name, len(trials), skipped)
		if len(trials) == 0 {
			continue
		}
		for _, w := range []int{100, 300, 500} {
			o, err := evaluateWithOverride(trials, func(tr *baseline.Trial) { tr.LookBack = w }, core.Config{})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  W=%-4d            P=%.2f R=%.2f\n", w, o.Precision(), o.Recall())
		}
		for _, ct := range []int64{2, 5, 10} {
			o, err := evaluateWithOverride(trials, nil, core.Config{ConcurrencyThreshold: ct})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  concurrency=%-4d  P=%.2f R=%.2f\n", ct, o.Precision(), o.Recall())
		}
	}
	return sb.String(), nil
}

func evaluateWithOverride(trials []*TrialBundle, mutate func(*baseline.Trial), cfg core.Config) (Outcome, error) {
	var total Outcome
	for _, tb := range trials {
		trial := *tb.Trial
		if mutate != nil {
			mutate(&trial)
		}
		s := &baseline.FChain{Config: cfg}
		pinned, err := s.Localize(&trial)
		if err != nil {
			return Outcome{}, err
		}
		total.Add(Score(pinned, tb.Truth))
	}
	return total, nil
}

// Table2 measures the CPU cost of each FChain module, mirroring the
// paper's overhead table: per-sample monitoring, normal fluctuation
// modeling over 1000 samples, abnormal change point selection over a 100 s
// window, integrated diagnosis, and per-component online validation
// (simulated seconds, reported as wall time here).
func Table2() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table II: FChain module cost measurements\n")

	cfg := core.DefaultConfig()
	trace := workload.NewSynthetic(workload.NASA(), 4000, 9)

	// Normal fluctuation modeling: 1000 samples through six metric models.
	mon := core.NewMonitor("m", cfg)
	var vec metric.Vector
	start := time.Now()
	for t := int64(0); t < 1000; t++ {
		for _, k := range metric.Kinds {
			vec.Set(k, trace.Rate(t))
		}
		if err := mon.ObserveVector(t, &vec); err != nil {
			return "", err
		}
	}
	modeling := time.Since(start)
	perSample := modeling / 1000
	fmt.Fprintf(&sb, "  VM monitoring+modeling (6 attributes, per sample): %v\n", perSample)
	fmt.Fprintf(&sb, "  normal fluctuation modeling (1000 samples):        %v\n", modeling)

	// Abnormal change point selection over a 100-sample window.
	for t := int64(1000); t < 1600; t++ {
		for _, k := range metric.Kinds {
			vec.Set(k, trace.Rate(t))
		}
		if err := mon.ObserveVector(t, &vec); err != nil {
			return "", err
		}
	}
	start = time.Now()
	report := mon.Analyze(1599)
	selection := time.Since(start)
	fmt.Fprintf(&sb, "  abnormal change point selection (100 samples):     %v\n", selection)

	// Integrated fault diagnosis over a handful of reports.
	reports := []core.ComponentReport{report}
	for i := 0; i < 6; i++ {
		reports = append(reports, core.ComponentReport{Component: fmt.Sprintf("c%d", i)})
	}
	start = time.Now()
	for i := 0; i < 1000; i++ {
		core.Diagnose(reports, len(reports), nil, cfg)
	}
	diagnosis := time.Since(start) / 1000
	fmt.Fprintf(&sb, "  integrated fault diagnosis (per invocation):       %v\n", diagnosis)

	// Online validation: dominated by the SLO observation window
	// (ValidationObserve simulated seconds per component).
	fmt.Fprintf(&sb, "  online validation (per component):                 %d simulated seconds\n", cfg.ValidationObserve)

	// Slave memory footprint (paper: ~3 MB per daemon): two float64+int64
	// rings of RingCapacity entries plus a bins×bins transition matrix, per
	// metric per monitored component.
	perMetric := cfg.RingCapacity*16*2 + cfg.MarkovBins*cfg.MarkovBins*8
	perComponent := perMetric * metric.NumKinds
	fmt.Fprintf(&sb, "  slave state (per monitored component):             ~%d KB\n", perComponent/1024)
	return sb.String(), nil
}
