package eval

import (
	"fmt"
	"strings"

	"fchain/internal/apps"
	"fchain/internal/baseline"
	"fchain/internal/core"
	"fchain/internal/depgraph"
)

// ablationVariant is one FChain configuration with a design choice removed
// or altered.
type ablationVariant struct {
	name string
	// cfg tweaks the FChain configuration.
	cfg core.Config
	// dropDeps removes the dependency graph from the trials.
	dropDeps bool
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{name: "full"},
		{
			// A near-zero fixed threshold admits every outlier change
			// point: the pipeline without the predictability filter.
			name: "no-predictability-filter",
			cfg:  core.Config{FixedThreshold: 1e-9},
		},
		{
			name: "no-rollback",
			cfg:  core.Config{DisableRollback: true},
		},
		{
			name:     "no-dependency",
			dropDeps: true,
		},
		{
			name: "no-smoothing",
			cfg:  core.Config{SmoothWindow: 1},
		},
		{
			name: "adaptive-lookback",
			cfg:  core.Config{AdaptiveLookBack: true},
		},
		{
			name: "adaptive-smoothing",
			cfg:  core.Config{AdaptiveSmoothing: true},
		},
	}
}

// AblationTable quantifies the contribution of each FChain design choice
// (an extension beyond the paper's figures): every variant runs on the same
// trials of three representative faults — the RUBiS CpuHog at the database
// (back-pressure), the System S MemLeak (no dependency information
// available), and the Hadoop concurrent DiskHog (slow manifestation, W=100
// here so the adaptive look-back variant has room to help).
func AblationTable(runs int, cfg RunConfig) (string, error) {
	bs := Benchmarks()
	diskhog := bs[2].Faults[2]
	diskhog.LookBack = 0 // deliberately leave W at the 100 s default
	cases := []struct {
		b  Benchmark
		fc apps.FaultCase
	}{
		{bs[0], bs[0].Faults[1]}, // rubis cpuhog
		{bs[1], bs[1].Faults[0]}, // systems memleak
		{bs[2], diskhog},         // hadoop concurrent-diskhog at W=100
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: contribution of FChain design choices, %d runs per fault\n", runs)
	for _, c := range cases {
		trials, skipped, err := Campaign(c.b, c.fc, runs, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%s/%s (%d trials, %d skipped):\n", c.b.Name, c.fc.Name, len(trials), skipped)
		if len(trials) == 0 {
			continue
		}
		for _, v := range ablationVariants() {
			var total Outcome
			for _, tb := range trials {
				trial := *tb.Trial
				if v.dropDeps {
					trial.Deps = depgraph.NewGraph()
				}
				scheme := &baseline.FChain{Config: v.cfg}
				pinned, err := scheme.Localize(&trial)
				if err != nil {
					return "", err
				}
				total.Add(Score(pinned, tb.Truth))
			}
			fmt.Fprintf(&sb, "  %-26s P=%.2f R=%.2f (tp=%d fp=%d fn=%d)\n",
				v.name, total.Precision(), total.Recall(), total.TP, total.FP, total.FN)
		}
	}
	return sb.String(), nil
}
