package eval

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"fchain/internal/baseline"
	"fchain/internal/cloudsim"
	"fchain/internal/core"
	"fchain/internal/faultlib"
	"fchain/internal/meshgen"
)

// MeshCase is one topology-size row group of the matrix: a named set of
// generator knobs.
type MeshCase struct {
	Name   string
	Params meshgen.Params
}

// MatrixConfig drives MatrixCampaign.
type MatrixConfig struct {
	// Meshes are the topology rows (default: the three committed sizes).
	Meshes []MeshCase
	// Templates are the fault columns (default: the full faultlib catalog).
	Templates []faultlib.Template
	// Runs is the number of seeded trials per cell (default 2).
	Runs int
	// Run is the per-cell campaign configuration. OmitTiming is forced so
	// the rendered matrix is byte-stable; Workers applies within each cell
	// and the rendered output is identical at any worker count.
	Run RunConfig
}

func (c MatrixConfig) withDefaults() MatrixConfig {
	if len(c.Meshes) == 0 {
		c.Meshes = DefaultMeshCases()
	}
	if len(c.Templates) == 0 {
		c.Templates = faultlib.Templates()
	}
	if c.Runs <= 0 {
		c.Runs = 2
	}
	// Injection must land after at least one full diurnal workload period
	// (1800 s): context calibration can only treat the generator's periodic
	// drift as "seen before" once a whole cycle is inside the retained
	// history, and injecting mid-first-cycle plants spurious pre-fault
	// onsets that steal the chain's source slot. A bounded horizon keeps
	// the full matrix tractable; the slowest template (slow-leak, 350 s
	// window) still fits.
	if c.Run.InjectMin <= 0 {
		c.Run.InjectMin = 2000
	}
	if c.Run.InjectMax <= c.Run.InjectMin {
		c.Run.InjectMax = c.Run.InjectMin + 100
	}
	if c.Run.Horizon <= 0 {
		c.Run.Horizon = 700
	}
	// Dependency discovery samples one request journey roughly every 1.3 s
	// and needs ~10 inbound flows per component before it trusts edges
	// (DiscoverConfig.MinFlows); a 400-component mesh's widest layer holds
	// ~160 components, so a mesh-scale capture must run far longer than the
	// paper apps' 600 s. Discovery is offline and cached in the paper, so a
	// long capture is free.
	if c.Run.DepTraceSec <= 0 {
		c.Run.DepTraceSec = 2400
	}
	c.Run.OmitTiming = true
	return c
}

// DefaultMeshCases returns the three committed topology sizes of
// results_matrix.txt.
func DefaultMeshCases() []MeshCase {
	return []MeshCase{
		{Name: "mesh-n100", Params: meshgen.Params{Components: 100, FanOut: 3, Depth: 5, CycleProb: 0.05, Seed: 11}},
		{Name: "mesh-n200", Params: meshgen.Params{Components: 200, FanOut: 3, Depth: 6, CycleProb: 0.05, Seed: 12}},
		{Name: "mesh-n400", Params: meshgen.Params{Components: 400, FanOut: 4, Depth: 6, CycleProb: 0.05, Seed: 13}},
	}
}

// CellResult is one (mesh × template) cell of the matrix.
type CellResult struct {
	Mesh     string
	Template string
	Trap     bool
	Trials   int // completed (violating) trials
	Skipped  int // runs without an SLO violation
	Outcome  Outcome
	// FalseAlarms counts trap trials on which at least one culprit was
	// blamed (the trap's failure mode).
	FalseAlarms int
	// OnsetErrSum/OnsetErrN accumulate |earliest true-culprit onset −
	// injection| over trials with at least one true positive.
	OnsetErrSum float64
	OnsetErrN   int
}

// OnsetErr returns the mean onset error and whether any trial produced one.
func (c CellResult) OnsetErr() (float64, bool) {
	if c.OnsetErrN == 0 {
		return 0, false
	}
	return c.OnsetErrSum / float64(c.OnsetErrN), true
}

// MatrixResult is the full campaign output.
type MatrixResult struct {
	Cells  []CellResult
	Meshes []MeshCase
	// MeshSummaries holds one generated-mesh description per mesh case.
	MeshSummaries []string
	Runs          int
}

// Cell finds a cell by mesh and template name.
func (r *MatrixResult) Cell(mesh, template string) (CellResult, bool) {
	for _, c := range r.Cells {
		if c.Mesh == mesh && c.Template == template {
			return c, true
		}
	}
	return CellResult{}, false
}

// MatrixCampaign runs the (topology-size × fault-template) accuracy matrix:
// for every cell it generates the mesh, binds the template to it, runs the
// existing parallel Campaign over cfg.Runs seeds, and diagnoses every trial
// with FChain (external-factor spread widened to faultlib.MeshExternalSpread
// — mesh depth stretches how long a mesh-wide shift takes to manifest
// everywhere). Cells execute concurrently; results are assembled in cell
// order, so the output is deterministic at any parallelism.
func MatrixCampaign(cfg MatrixConfig) (*MatrixResult, error) {
	cfg = cfg.withDefaults()

	type cellJob struct {
		meshIdx, tplIdx int
	}
	var jobs []cellJob
	for mi := range cfg.Meshes {
		for ti := range cfg.Templates {
			jobs = append(jobs, cellJob{mi, ti})
		}
	}

	meshes := make([]*meshgen.Mesh, len(cfg.Meshes))
	summaries := make([]string, len(cfg.Meshes))
	for i, mc := range cfg.Meshes {
		m, err := meshgen.Generate(mc.Params)
		if err != nil {
			return nil, fmt.Errorf("eval: matrix mesh %s: %w", mc.Name, err)
		}
		meshes[i] = m
		summaries[i] = m.String()
	}

	cells := make([]CellResult, len(jobs))
	errs := make([]error, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				job := jobs[idx]
				cells[idx], errs[idx] = runMatrixCell(
					cfg.Meshes[job.meshIdx].Name, meshes[job.meshIdx],
					cfg.Templates[job.tplIdx], cfg.Runs, cfg.Run)
			}
		}()
	}
	for idx := range jobs {
		jobCh <- idx
	}
	close(jobCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &MatrixResult{
		Cells:         cells,
		Meshes:        cfg.Meshes,
		MeshSummaries: summaries,
		Runs:          cfg.Runs,
	}, nil
}

// runMatrixCell executes one cell: Campaign over the seeds, then FChain
// diagnosis and scoring per trial.
func runMatrixCell(meshName string, m *meshgen.Mesh, tpl faultlib.Template, runs int, run RunConfig) (CellResult, error) {
	bench := Benchmark{
		Name:  meshName,
		Build: func(seed int64) cloudsim.AppSpec { return m.SpecWithTrace(seed) },
	}
	fc := faultlib.FaultCase(tpl, m)
	if tpl.SustainSec > 0 {
		run.SustainSec = tpl.SustainSec
	}
	trials, skipped, err := Campaign(bench, fc, runs, run)
	if err != nil {
		return CellResult{}, fmt.Errorf("eval: matrix cell %s/%s: %w", meshName, tpl.Name, err)
	}
	cell := CellResult{
		Mesh:     meshName,
		Template: tpl.Name,
		Trap:     tpl.Trap,
		Trials:   len(trials),
		Skipped:  skipped,
	}
	scheme := &baseline.FChain{Config: core.Config{
		ExternalSpread:  faultlib.MeshExternalSpread,
		MinRelMagnitude: faultlib.MeshMinRelMagnitude,
	}}
	for _, tb := range trials {
		diag, err := scheme.Diagnose(tb.Trial)
		if err != nil {
			return CellResult{}, fmt.Errorf("eval: matrix diagnose %s/%s seed %d: %w", meshName, tpl.Name, tb.Seed, err)
		}
		cell.Outcome.Add(Score(diag.CulpritNames(), tb.Truth))
		if tpl.Trap && len(diag.Culprits) > 0 {
			cell.FalseAlarms++
		}
		truth := make(map[string]bool, len(tb.Truth))
		for _, c := range tb.Truth {
			truth[c] = true
		}
		best, found := int64(0), false
		for _, cu := range diag.Culprits {
			if !truth[cu.Component] {
				continue
			}
			e := cu.Onset - tb.Inject
			if e < 0 {
				e = -e
			}
			if !found || e < best {
				best, found = e, true
			}
		}
		if found {
			cell.OnsetErrSum += float64(best)
			cell.OnsetErrN++
		}
	}
	return cell, nil
}

// Render formats the matrix as the committed league-style artifact. Every
// number is a pure function of (meshes, templates, runs, seeds), so the
// output is byte-stable across machines and worker counts.
func (r *MatrixResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(topology x fault) accuracy matrix — FChain on generated meshes\n")
	fmt.Fprintf(&sb, "runs per cell: %d (seeds 1..%d); external-factor spread %ds\n",
		r.Runs, r.Runs, faultlib.MeshExternalSpread)
	fmt.Fprintf(&sb, "traps are scored on silence: recall is vacuously 1, every blamed culprit a false positive\n")
	for i, mc := range r.Meshes {
		fmt.Fprintf(&sb, "\n%s (%s)\n", mc.Name, mc.Params)
		fmt.Fprintf(&sb, "  %s\n", r.MeshSummaries[i])
		for _, c := range r.Cells {
			if c.Mesh != mc.Name {
				continue
			}
			if c.Trap {
				fmt.Fprintf(&sb, "  %-20s [trap] false-alarms=%d/%d", c.Template, c.FalseAlarms, c.Trials)
				fmt.Fprintf(&sb, " (fp=%d, trials=%d, skipped=%d)\n", c.Outcome.FP, c.Trials, c.Skipped)
				continue
			}
			fmt.Fprintf(&sb, "  %-20s P=%.2f R=%.2f", c.Template, c.Outcome.Precision(), c.Outcome.Recall())
			if e, ok := c.OnsetErr(); ok {
				fmt.Fprintf(&sb, " onset-err=%.1fs", e)
			} else {
				fmt.Fprintf(&sb, " onset-err=n/a ")
			}
			fmt.Fprintf(&sb, " (tp=%d fp=%d fn=%d, trials=%d, skipped=%d)\n",
				c.Outcome.TP, c.Outcome.FP, c.Outcome.FN, c.Trials, c.Skipped)
		}
	}
	return sb.String()
}

// MatrixReport runs the default matrix and renders it — the entry point the
// scenario facade and cmd/fchain-bench use to (re)generate
// results_matrix.txt.
func MatrixReport(runs int, run RunConfig) (string, error) {
	res, err := MatrixCampaign(MatrixConfig{Runs: runs, Run: run})
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}
