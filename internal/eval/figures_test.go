package eval

import (
	"strings"
	"testing"
)

// TestAccuracyFigures smoke-runs every campaign figure at a small run count
// and checks the report structure: every scheme present, counts consistent.
func TestAccuracyFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments")
	}
	figs := map[string]func(int, RunConfig) (string, error){
		"fig6": Figure6, "fig7": Figure7, "fig8": Figure8,
		"fig9": Figure9, "fig10": Figure10,
	}
	for name, fn := range figs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := fn(2, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"fchain", "topology", "dependency", "pal", "histogram", "netmedic", "fault "} {
				if !strings.Contains(out, want) {
					t.Errorf("%s report missing %q:\n%s", name, want, out)
				}
			}
		})
	}
}

func TestFigure11Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	out, err := Figure11(2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fchain+val") || !strings.Contains(out, "bottleneck") {
		t.Errorf("figure 11 report malformed:\n%s", out)
	}
}

func TestFigure12Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	out, err := Figure12(2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fixed(t=") || !strings.Contains(out, "lbbug") {
		t.Errorf("figure 12 report malformed:\n%s", out)
	}
}

func TestTable1Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	out, err := Table1(2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"W=100", "W=500", "concurrency=2", "concurrency=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 report missing %q:\n%s", want, out)
		}
	}
}
