package eval

import (
	"strings"
	"testing"
)

func TestAblationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	out, err := AblationTable(2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"full", "no-predictability-filter", "no-rollback",
		"no-dependency", "no-smoothing", "adaptive-lookback", "adaptive-smoothing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing variant %q:\n%s", want, out)
		}
	}
	// Every benchmark case must appear.
	for _, want := range []string{"rubis/cpuhog", "systems/memleak", "hadoop/concurrent-diskhog"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing case %q", want)
		}
	}
}
