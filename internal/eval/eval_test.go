package eval

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"fchain/internal/baseline"
)

func TestScore(t *testing.T) {
	tests := []struct {
		name   string
		pinned []string
		truth  []string
		want   Outcome
	}{
		{"exact", []string{"a"}, []string{"a"}, Outcome{TP: 1}},
		{"miss", nil, []string{"a"}, Outcome{FN: 1}},
		{"false alarm", []string{"b"}, []string{"a"}, Outcome{FP: 1, FN: 1}},
		{"partial multi", []string{"a", "c"}, []string{"a", "b"}, Outcome{TP: 1, FP: 1, FN: 1}},
		{"duplicates ignored", []string{"a", "a"}, []string{"a"}, Outcome{TP: 1}},
		{"empty truth", []string{"a"}, nil, Outcome{FP: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Score(tt.pinned, tt.truth); got != tt.want {
				t.Errorf("Score = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestPrecisionRecall(t *testing.T) {
	o := Outcome{TP: 3, FP: 1, FN: 2}
	if got := o.Precision(); got != 0.75 {
		t.Errorf("Precision = %v", got)
	}
	if got := o.Recall(); got != 0.6 {
		t.Errorf("Recall = %v", got)
	}
	var zero Outcome
	if zero.Precision() != 0 {
		t.Error("zero outcome should have 0 precision")
	}
	if zero.Recall() != 1 {
		t.Error("zero outcome (empty truth, nothing pinpointed) should have vacuous recall 1")
	}
}

// TestTrapScoring pins the false-alarm-trap scoring path: an empty ground
// truth means any culprit is a false positive, recall is vacuously 1, and
// precision is defined (0 when anyone was blamed, the 0/0 convention
// otherwise).
func TestTrapScoring(t *testing.T) {
	silent := Score(nil, []string{})
	if silent != (Outcome{}) {
		t.Fatalf("silent trap outcome = %+v, want all-zero", silent)
	}
	if silent.Recall() != 1 {
		t.Errorf("silent trap recall = %v, want vacuous 1", silent.Recall())
	}
	if silent.Precision() != 0 {
		t.Errorf("silent trap precision = %v, want 0 (0/0 convention)", silent.Precision())
	}

	blamed := Score([]string{"m01-000", "m02-003"}, []string{})
	if blamed.TP != 0 || blamed.FP != 2 || blamed.FN != 0 {
		t.Fatalf("blamed trap outcome = %+v, want 2 pure false positives", blamed)
	}
	if blamed.Precision() != 0 {
		t.Errorf("blamed trap precision = %v, want 0", blamed.Precision())
	}
	if blamed.Recall() != 1 {
		t.Errorf("blamed trap recall = %v, want vacuous 1 (nothing was missable)", blamed.Recall())
	}

	// Aggregation across a campaign: trap FPs dilute precision but leave
	// recall untouched.
	agg := Outcome{TP: 3, FN: 1}
	agg.Add(blamed)
	if got := agg.Precision(); got != 0.6 {
		t.Errorf("aggregate precision = %v, want 0.6", got)
	}
	if got := agg.Recall(); got != 0.75 {
		t.Errorf("aggregate recall = %v, want 0.75", got)
	}
}

// Property: precision and recall always lie in [0,1] and score conserves
// counts.
func TestScoreProperties(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	f := func(pinnedMask, truthMask uint8) bool {
		var pinned, truth []string
		for i, n := range names {
			if pinnedMask&(1<<i) != 0 {
				pinned = append(pinned, n)
			}
			if truthMask&(1<<i) != 0 {
				truth = append(truth, n)
			}
		}
		o := Score(pinned, truth)
		if o.TP+o.FP != len(pinned) {
			return false
		}
		if o.TP+o.FN != len(truth) {
			return false
		}
		p, r := o.Precision(), o.Recall()
		return p >= 0 && p <= 1 && r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunTrialProducesCompleteBundle(t *testing.T) {
	b := Benchmarks()[0] // rubis
	tb, err := RunTrial(b, b.Faults[1] /* cpuhog */, 1, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Trial.TV <= tb.Inject {
		t.Errorf("tv %d should follow injection %d", tb.Trial.TV, tb.Inject)
	}
	if len(tb.Truth) == 0 {
		t.Error("no ground truth")
	}
	if tb.Trial.Topology == nil || tb.Trial.Topology.Empty() {
		t.Error("topology missing")
	}
	if tb.Trial.Deps == nil || tb.Trial.Deps.Empty() {
		t.Error("rubis dependency discovery should succeed")
	}
	if tb.Trial.Sim == nil {
		t.Error("live sim missing")
	}
	for _, comp := range tb.Trial.Components {
		s := tb.Trial.SeriesOf(comp, 1)
		if s == nil || s.End() != tb.Trial.TV+1 {
			t.Errorf("%s series should end at tv+1", comp)
		}
	}
}

func TestRunTrialSystemSDepsEmpty(t *testing.T) {
	b := Benchmarks()[1]
	tb, err := RunTrial(b, b.Faults[1], 1, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Trial.Deps.Empty() {
		t.Error("System S streaming traffic should defeat dependency discovery")
	}
}

func TestRunTrialDeterministic(t *testing.T) {
	b := Benchmarks()[0]
	a1, err := RunTrial(b, b.Faults[0], 2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RunTrial(b, b.Faults[0], 2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Inject != a2.Inject || a1.Trial.TV != a2.Trial.TV {
		t.Errorf("trials differ: inject %d/%d tv %d/%d", a1.Inject, a2.Inject, a1.Trial.TV, a2.Trial.TV)
	}
}

func TestCampaignSkipsNoViolation(t *testing.T) {
	// With a tiny horizon no violation can be reached, so every run is
	// counted as skipped rather than failing the campaign.
	b := Benchmarks()[0]
	trials, skipped, err := Campaign(b, b.Faults[0], 2, RunConfig{Horizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 0 || skipped != 2 {
		t.Errorf("expected all runs skipped: trials=%d skipped=%d", len(trials), skipped)
	}
}

func TestEvaluateSchemeAggregates(t *testing.T) {
	b := Benchmarks()[0]
	trials, skipped, err := Campaign(b, b.Faults[1], 2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if skipped > 0 || len(trials) != 2 {
		t.Fatalf("campaign trials=%d skipped=%d", len(trials), skipped)
	}
	o, err := EvaluateScheme(&baseline.FChain{}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if o.TP+o.FN != 2 {
		t.Errorf("two single-fault trials should have TP+FN=2, got %+v", o)
	}
	if o.Recall() < 0.5 {
		t.Errorf("fchain recall on cpuhog should be high, got %+v", o)
	}
}

func TestBestOfAndSort(t *testing.T) {
	rs := []SchemeResult{
		{Scheme: "bad", Outcome: Outcome{TP: 1, FP: 9, FN: 9}},
		{Scheme: "good", Outcome: Outcome{TP: 9, FP: 1, FN: 1}},
	}
	if best := BestOf(rs); best.Scheme != "good" {
		t.Errorf("BestOf = %s", best.Scheme)
	}
	SortResults(rs)
	if rs[0].Scheme != "good" {
		t.Errorf("SortResults order wrong: %v", rs)
	}
	if BestOf(nil).Scheme != "" {
		t.Error("BestOf(nil) should be zero")
	}
}

func TestFigure2Shape(t *testing.T) {
	out, err := Figure2(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pinpointed: pe3") {
		t.Errorf("Figure 2 should pinpoint pe3:\n%s", out)
	}
	// The propagation chain must show pe3 before pe6 before pe2.
	i3 := strings.Index(out, "pe3@")
	i6 := strings.Index(out, "pe6@")
	i2 := strings.Index(out, "pe2@")
	if i3 < 0 || i6 < 0 || i2 < 0 || !(i3 < i6 && i6 < i2) {
		t.Errorf("Figure 2 chain order wrong:\n%s", out)
	}
}

func TestFigure3Shape(t *testing.T) {
	out, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "faulty map selected=true") {
		t.Errorf("Figure 3 should select the faulty map's DiskWrite:\n%s", out)
	}
	if !strings.Contains(out, "normal reduce selected=false") {
		t.Errorf("Figure 3 should filter the normal reduce's CPU:\n%s", out)
	}
}

func TestFigure4Shape(t *testing.T) {
	out, err := Figure4(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rank correlation") {
		t.Fatalf("Figure 4 missing correlation line:\n%s", out)
	}
	// Extract the correlation and require it to be strongly positive.
	idx := strings.Index(out, "rank correlation(local burstiness, expected error) = ")
	rest := out[idx+len("rank correlation(local burstiness, expected error) = "):]
	corr, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
	if err != nil {
		t.Fatalf("cannot parse correlation from %q: %v", rest, err)
	}
	if corr < 0.5 {
		t.Errorf("expected strong positive correlation, got %v", corr)
	}
}

func TestFigure5Shape(t *testing.T) {
	out, err := Figure5(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "app1") {
		t.Errorf("Figure 5 should pinpoint app1:\n%s", out)
	}
	if !strings.Contains(out, "discovered dependencies") {
		t.Errorf("Figure 5 should show the discovered graph:\n%s", out)
	}
}

func TestTable2Runs(t *testing.T) {
	out, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"monitoring", "selection", "diagnosis", "validation"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}
