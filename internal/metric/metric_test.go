package metric

import "testing"

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{CPU, "cpu"}, {Memory, "memory"}, {NetIn, "net_in"},
		{NetOut, "net_out"}, {DiskRead, "disk_read"}, {DiskWrite, "disk_write"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.k, got, tt.want)
		}
		if !tt.k.Valid() {
			t.Errorf("%v should be valid", tt.k)
		}
	}
	if Kind(0).Valid() || Kind(99).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should error")
	}
}

func TestKindsComplete(t *testing.T) {
	if len(Kinds) != NumKinds {
		t.Errorf("Kinds has %d entries, want %d", len(Kinds), NumKinds)
	}
	seen := make(map[Kind]bool)
	for _, k := range Kinds {
		if seen[k] {
			t.Errorf("duplicate kind %v", k)
		}
		seen[k] = true
	}
}

func TestVector(t *testing.T) {
	var v Vector
	v.Set(CPU, 42.5)
	v.Set(DiskWrite, 7)
	if v.Get(CPU) != 42.5 || v.Get(DiskWrite) != 7 || v.Get(Memory) != 0 {
		t.Errorf("vector get/set wrong: %+v", v)
	}
}
