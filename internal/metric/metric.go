// Package metric defines the system-level metric vocabulary shared by the
// FChain monitoring, simulation, and diagnosis layers.
//
// FChain is a black-box fault localizer: it observes only low-level,
// per-component (per-VM) system metrics that a hypervisor or guest OS can
// export without application cooperation. The paper monitors six attributes
// at a 1-second sampling interval: CPU usage, memory usage, network in,
// network out, disk read, and disk write.
package metric

import "fmt"

// Kind identifies one of the six system-level metrics FChain monitors.
type Kind int

// The six monitored system-level metrics (paper §III-A).
const (
	CPU Kind = iota + 1
	Memory
	NetIn
	NetOut
	DiskRead
	DiskWrite
)

// Kinds lists every monitored metric in canonical order.
var Kinds = []Kind{CPU, Memory, NetIn, NetOut, DiskRead, DiskWrite}

// NumKinds is the number of monitored metrics.
const NumKinds = 6

var kindNames = map[Kind]string{
	CPU:       "cpu",
	Memory:    "memory",
	NetIn:     "net_in",
	NetOut:    "net_out",
	DiskRead:  "disk_read",
	DiskWrite: "disk_write",
}

// String returns the canonical lowercase name of the metric.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("metric(%d)", int(k))
}

// Valid reports whether k is one of the six monitored metrics.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// ParseKind returns the Kind named by s, as produced by Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("metric: unknown kind %q", s)
}

// Vector holds one sample of every monitored metric for a component,
// indexed by Kind.
type Vector [NumKinds + 1]float64

// Get returns the value recorded for metric k.
func (v *Vector) Get(k Kind) float64 { return v[k] }

// Set records value x for metric k.
func (v *Vector) Set(k Kind, x float64) { v[k] = x }

// Sample is a timestamped metric observation for a named component.
type Sample struct {
	Component string  `json:"component"`
	Kind      Kind    `json:"kind"`
	Time      int64   `json:"time"` // seconds since scenario start
	Value     float64 `json:"value"`
}
