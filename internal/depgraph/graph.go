// Package depgraph provides the inter-component dependency graph and the
// black-box dependency discovery used by FChain's integrated fault
// diagnosis.
//
// FChain does not assume application topology knowledge. Instead it runs an
// offline, Sherlock-style ([11] in the paper) discovery pass over passively
// captured network traffic: packets between a component pair are grouped
// into flows using inter-packet gaps, and an edge A→B is inferred when flows
// into A are followed, within a small delay window, by flows from A to B
// significantly more often than chance. Because the discovery needs gaps to
// delimit flows, it finds nothing for continuous data-stream systems — the
// exact failure mode the paper reports for IBM System S; FChain then falls
// back to pure propagation-order localization.
package depgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a directed dependency graph: an edge A→B means "A depends on B"
// in the sense that A sends requests to B (B is downstream of A).
type Graph struct {
	edges map[string]map[string]float64 // from -> to -> confidence
	nodes map[string]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		edges: make(map[string]map[string]float64),
		nodes: make(map[string]bool),
	}
}

// AddNode registers a node without edges.
func (g *Graph) AddNode(name string) {
	g.nodes[name] = true
}

// AddEdge records a dependency from→to with the given confidence, keeping
// the maximum confidence when the edge already exists.
func (g *Graph) AddEdge(from, to string, confidence float64) {
	if from == to {
		return
	}
	g.nodes[from] = true
	g.nodes[to] = true
	m, ok := g.edges[from]
	if !ok {
		m = make(map[string]float64)
		g.edges[from] = m
	}
	if confidence > m[to] {
		m[to] = confidence
	}
}

// HasEdge reports whether from→to exists.
func (g *Graph) HasEdge(from, to string) bool {
	_, ok := g.edges[from][to]
	return ok
}

// Confidence returns the recorded confidence of edge from→to (0 when the
// edge is absent).
func (g *Graph) Confidence(from, to string) float64 {
	return g.edges[from][to]
}

// Nodes returns all node names in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns the number of directed edges.
func (g *Graph) Edges() int {
	n := 0
	for _, m := range g.edges {
		n += len(m)
	}
	return n
}

// Empty reports whether the graph has no edges — the situation FChain faces
// when dependency discovery fails (e.g. for stream processing systems).
func (g *Graph) Empty() bool { return g.Edges() == 0 }

// Successors returns the direct downstream neighbors of n, sorted.
func (g *Graph) Successors(n string) []string {
	m := g.edges[n]
	out := make([]string, 0, len(m))
	for to := range m {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

// HasPath reports whether to is reachable from from following directed
// edges in either direction of interaction (a dependency path exists between
// the two components regardless of who is client and who is server). FChain
// uses paths to decide whether an anomaly *could* have propagated between
// two components: propagation travels downstream via requests and upstream
// via back-pressure, so any chain of interaction edges suffices
// (paper §II-C).
func (g *Graph) HasPath(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.edges[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
		// Interaction is bidirectional for propagation purposes.
		for src, m := range g.edges {
			if _, ok := m[cur]; ok {
				if src == to {
					return true
				}
				if !seen[src] {
					seen[src] = true
					stack = append(stack, src)
				}
			}
		}
	}
	return false
}

// HasDirectedPath reports whether to is reachable from from following edge
// direction only (request direction). The Topology/Dependency baselines use
// directed reachability.
func (g *Graph) HasDirectedPath(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.edges[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// IsAcyclic reports whether the graph contains no directed cycle. The mesh
// generator uses it to prove that a cycle-probability of zero yields a DAG
// (and that a positive one eventually does not).
func (g *Graph) IsAcyclic() bool {
	state := make(map[string]int, len(g.nodes)) // 0=unseen 1=visiting 2=done
	var visit func(n string) bool
	visit = func(n string) bool {
		state[n] = 1
		for next := range g.edges[n] {
			switch state[next] {
			case 1:
				return false
			case 0:
				if !visit(next) {
					return false
				}
			}
		}
		state[n] = 2
		return true
	}
	for n := range g.nodes {
		if state[n] == 0 && !visit(n) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for n := range g.nodes {
		out.AddNode(n)
	}
	for from, m := range g.edges {
		for to, c := range m {
			out.AddEdge(from, to, c)
		}
	}
	return out
}

// String renders the graph compactly for logs and tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, from := range g.Nodes() {
		for _, to := range g.Successors(from) {
			fmt.Fprintf(&sb, "%s->%s(%.2f) ", from, to, g.Confidence(from, to))
		}
	}
	return strings.TrimSpace(sb.String())
}
