package depgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	if !g.Empty() {
		t.Error("fresh graph should be empty")
	}
	g.AddEdge("web", "app", 0.9)
	g.AddEdge("app", "db", 0.8)
	if !g.HasEdge("web", "app") || g.HasEdge("app", "web") {
		t.Error("edge direction wrong")
	}
	if g.Edges() != 2 {
		t.Errorf("Edges = %d, want 2", g.Edges())
	}
	if got := g.Confidence("web", "app"); got != 0.9 {
		t.Errorf("Confidence = %v, want 0.9", got)
	}
	want := []string{"app", "db", "web"}
	got := g.Nodes()
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Nodes[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestGraphSelfEdgeIgnored(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "a", 1)
	if g.Edges() != 0 {
		t.Error("self edges must be ignored")
	}
}

func TestGraphKeepsMaxConfidence(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b", 0.5)
	g.AddEdge("a", "b", 0.9)
	g.AddEdge("a", "b", 0.2)
	if got := g.Confidence("a", "b"); got != 0.9 {
		t.Errorf("Confidence = %v, want 0.9", got)
	}
}

func TestDirectedPath(t *testing.T) {
	g := NewGraph()
	g.AddEdge("web", "app1", 1)
	g.AddEdge("web", "app2", 1)
	g.AddEdge("app1", "db", 1)
	g.AddEdge("app2", "db", 1)
	tests := []struct {
		from, to string
		want     bool
	}{
		{"web", "db", true},
		{"db", "web", false},
		{"app1", "app2", false},
		{"web", "web", true},
		{"app1", "db", true},
	}
	for _, tt := range tests {
		if got := g.HasDirectedPath(tt.from, tt.to); got != tt.want {
			t.Errorf("HasDirectedPath(%s,%s) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestIsAcyclic(t *testing.T) {
	g := NewGraph()
	g.AddEdge("web", "app1", 1)
	g.AddEdge("web", "app2", 1)
	g.AddEdge("app1", "db", 1)
	g.AddEdge("app2", "db", 1)
	if !g.IsAcyclic() {
		t.Error("diamond DAG reported cyclic")
	}
	g.AddEdge("db", "web", 1) // feedback edge closes a cycle
	if g.IsAcyclic() {
		t.Error("graph with db->web feedback reported acyclic")
	}

	empty := NewGraph()
	if !empty.IsAcyclic() {
		t.Error("empty graph reported cyclic")
	}
	empty.AddNode("lone")
	if !empty.IsAcyclic() {
		t.Error("single node reported cyclic")
	}

	// Self-edges are ignored by AddEdge, so they cannot create a cycle.
	loop := NewGraph()
	loop.AddEdge("a", "a", 1)
	loop.AddEdge("a", "b", 1)
	if !loop.IsAcyclic() {
		t.Error("ignored self-edge reported as a cycle")
	}

	// A cycle in one component is found even with other acyclic components.
	multi := NewGraph()
	multi.AddEdge("x", "y", 1)
	multi.AddEdge("p", "q", 1)
	multi.AddEdge("q", "r", 1)
	multi.AddEdge("r", "p", 1)
	if multi.IsAcyclic() {
		t.Error("cycle p->q->r->p not detected alongside acyclic component")
	}
}

func TestUndirectedPathCoversBackPressure(t *testing.T) {
	// db is downstream of app; back-pressure can push anomalies upstream,
	// so a propagation path db ~> web must exist.
	g := NewGraph()
	g.AddEdge("web", "app", 1)
	g.AddEdge("app", "db", 1)
	if !g.HasPath("db", "web") {
		t.Error("undirected propagation path db->web should exist")
	}
	// But two disconnected components have no path.
	g.AddNode("outsider")
	if g.HasPath("db", "outsider") {
		t.Error("no path should exist to a disconnected node")
	}
}

func TestSuccessorsSorted(t *testing.T) {
	g := NewGraph()
	g.AddEdge("x", "c", 1)
	g.AddEdge("x", "a", 1)
	g.AddEdge("x", "b", 1)
	got := g.Successors("x")
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Successors = %v, want %v", got, want)
		}
	}
}

func TestClone(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b", 0.7)
	c := g.Clone()
	c.AddEdge("b", "c", 0.5)
	if g.HasEdge("b", "c") {
		t.Error("clone must not share edge storage")
	}
	if !c.HasEdge("a", "b") || c.Confidence("a", "b") != 0.7 {
		t.Error("clone missing original edge")
	}
}

// requestReplyTrace synthesizes a classic multi-tier request/reply packet
// trace: client→web→app→db with per-hop delays, one burst per request,
// separated by think time.
func requestReplyTrace(requests int, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	var pkts []Packet
	t := 0.0
	for i := 0; i < requests; i++ {
		t += 1.0 + rng.Float64() // think time >> gap threshold
		tt := t
		pkts = append(pkts, Packet{Time: tt, Src: "client", Dst: "web"})
		tt += 0.01
		pkts = append(pkts, Packet{Time: tt, Src: "web", Dst: "app"})
		tt += 0.01
		pkts = append(pkts, Packet{Time: tt, Src: "app", Dst: "db"})
		tt += 0.02
		pkts = append(pkts, Packet{Time: tt, Src: "db", Dst: "app"})
		tt += 0.01
		pkts = append(pkts, Packet{Time: tt, Src: "app", Dst: "web"})
		tt += 0.01
		pkts = append(pkts, Packet{Time: tt, Src: "web", Dst: "client"})
	}
	return pkts
}

func TestExtractFlowsSplitsOnGaps(t *testing.T) {
	pkts := []Packet{
		{Time: 0.0, Src: "a", Dst: "b"},
		{Time: 0.1, Src: "a", Dst: "b"},
		{Time: 5.0, Src: "a", Dst: "b"}, // gap >> threshold: new flow
		{Time: 5.1, Src: "a", Dst: "b"},
	}
	flows := ExtractFlows(pkts, DiscoverConfig{GapThreshold: 0.5})
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2: %+v", len(flows), flows)
	}
	if flows[0].Count != 2 || flows[1].Count != 2 {
		t.Errorf("flow packet counts wrong: %+v", flows)
	}
}

func TestExtractFlowsContinuousStream(t *testing.T) {
	// Packets every 100ms for 60s: one giant flow, no gaps.
	var pkts []Packet
	for i := 0; i < 600; i++ {
		pkts = append(pkts, Packet{Time: float64(i) * 0.1, Src: "pe1", Dst: "pe2"})
	}
	flows := ExtractFlows(pkts, DiscoverConfig{GapThreshold: 0.5})
	if len(flows) != 1 {
		t.Fatalf("continuous stream should form one flow, got %d", len(flows))
	}
}

func TestDiscoverMultiTier(t *testing.T) {
	g := Discover(requestReplyTrace(200, 1), DiscoverConfig{})
	if !g.HasEdge("web", "app") {
		t.Errorf("missing web->app edge; graph: %s", g)
	}
	if !g.HasEdge("app", "db") {
		t.Errorf("missing app->db edge; graph: %s", g)
	}
	// No fabricated reverse-direction dependency beyond replies: the db
	// must not appear to depend on the client.
	if g.HasEdge("db", "client") {
		t.Errorf("spurious db->client edge; graph: %s", g)
	}
}

func TestDiscoverFailsOnStreams(t *testing.T) {
	// The paper's System S observation: continuous tuple traffic has no
	// inter-packet gaps, so no dependencies are discoverable.
	var pkts []Packet
	for i := 0; i < 2000; i++ {
		ts := float64(i) * 0.05
		pkts = append(pkts, Packet{Time: ts, Src: "pe1", Dst: "pe3"})
		pkts = append(pkts, Packet{Time: ts + 0.01, Src: "pe3", Dst: "pe6"})
		pkts = append(pkts, Packet{Time: ts + 0.02, Src: "pe6", Dst: "pe7"})
	}
	g := Discover(pkts, DiscoverConfig{})
	if !g.Empty() {
		t.Errorf("stream trace should yield an empty graph, got %s", g)
	}
	// Nodes are still observed even though no edges are inferable.
	if len(g.Nodes()) == 0 {
		t.Error("nodes should still be recorded")
	}
}

func TestDiscoverNeedsEnoughData(t *testing.T) {
	g := Discover(requestReplyTrace(3, 2), DiscoverConfig{MinFlows: 10})
	if g.HasEdge("app", "db") {
		t.Error("too little trace data should not produce confident edges")
	}
}

func TestDiscoverEmptyTrace(t *testing.T) {
	g := Discover(nil, DiscoverConfig{})
	if !g.Empty() || len(g.Nodes()) != 0 {
		t.Error("empty trace should produce empty graph")
	}
}

// Property: HasPath is reflexive and consistent with HasDirectedPath.
func TestPathProperties(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		g := NewGraph()
		names := []string{"a", "b", "c", "d", "e"}
		for _, e := range edges {
			g.AddEdge(names[int(e[0])%len(names)], names[int(e[1])%len(names)], 1)
		}
		for _, n := range names {
			if !g.HasPath(n, n) {
				return false
			}
			for _, m := range names {
				// Directed reachability implies undirected reachability.
				if g.HasDirectedPath(n, m) && !g.HasPath(n, m) {
					return false
				}
				// Undirected paths are symmetric.
				if g.HasPath(n, m) != g.HasPath(m, n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: flow extraction conserves packet counts.
func TestFlowConservationProperty(t *testing.T) {
	f := func(times []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c"}
		var pkts []Packet
		for _, raw := range times {
			pkts = append(pkts, Packet{
				Time: float64(raw) * 0.01,
				Src:  names[rng.Intn(len(names))],
				Dst:  names[rng.Intn(len(names))],
			})
		}
		flows := ExtractFlows(pkts, DiscoverConfig{})
		total := 0
		for _, f := range flows {
			if f.Count <= 0 || f.End < f.Start {
				return false
			}
			total += f.Count
		}
		return total == len(pkts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
