package depgraph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestPersistRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddEdge("web", "app1", 0.58)
	g.AddEdge("web", "app2", 0.51)
	g.AddEdge("app1", "db", 1.0)
	g.AddNode("lonely")

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != g.String() {
		t.Errorf("roundtrip mismatch:\n got %s\nwant %s", back, g)
	}
	// Isolated nodes must survive too (they matter for HasPath).
	found := false
	for _, n := range back.Nodes() {
		if n == "lonely" {
			found = true
		}
	}
	if !found {
		t.Error("isolated node lost in roundtrip")
	}
}

func TestPersistDeterministic(t *testing.T) {
	g := NewGraph()
	g.AddEdge("b", "c", 0.5)
	g.AddEdge("a", "c", 0.7)
	g.AddEdge("a", "b", 0.9)
	var one, two bytes.Buffer
	if err := g.Write(&one); err != nil {
		t.Fatal(err)
	}
	if err := g.Write(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("serialization is not deterministic")
	}
}

func TestPersistFile(t *testing.T) {
	g := NewGraph()
	g.AddEdge("x", "y", 0.8)
	path := filepath.Join(t.TempDir(), "deps.json")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasEdge("x", "y") || back.Confidence("x", "y") != 0.8 {
		t.Errorf("loaded graph wrong: %s", back)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestReadGraphRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"not json", "hello"},
		{"wrong version", `{"version": 99, "nodes": [], "edges": []}`},
		{"empty node", `{"version": 1, "nodes": [""], "edges": []}`},
		{"empty endpoint", `{"version": 1, "nodes": ["a"], "edges": [{"from":"","to":"a","confidence":1}]}`},
		{"bad confidence", `{"version": 1, "nodes": ["a","b"], "edges": [{"from":"a","to":"b","confidence":7}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadGraph(strings.NewReader(tt.give)); err == nil {
				t.Errorf("ReadGraph(%q) should error", tt.give)
			}
		})
	}
}

// Property: every generated graph survives a serialization roundtrip with
// identical reachability.
func TestPersistRoundTripProperty(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	f := func(edges []uint8) bool {
		g := NewGraph()
		for _, e := range edges {
			from := names[int(e)%len(names)]
			to := names[int(e>>2)%len(names)]
			g.AddEdge(from, to, float64(e%10)/10)
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			return false
		}
		back, err := ReadGraph(&buf)
		if err != nil {
			return false
		}
		for _, x := range names {
			for _, y := range names {
				if g.HasDirectedPath(x, y) != back.HasDirectedPath(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
