package depgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The paper performs dependency discovery offline and stores the result in
// a file for later reference (§II-C fn. 3), since application dependencies
// rarely change at runtime. This file implements that persistence as a
// stable, human-auditable JSON document.

// persistedGraph is the on-disk representation.
type persistedGraph struct {
	// Version guards future format evolution.
	Version int             `json:"version"`
	Nodes   []string        `json:"nodes"`
	Edges   []persistedEdge `json:"edges"`
}

type persistedEdge struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	Confidence float64 `json:"confidence"`
}

const persistVersion = 1

// Write serializes the graph as JSON. Nodes and edges are emitted in
// sorted order so the output is deterministic and diff-friendly.
func (g *Graph) Write(w io.Writer) error {
	doc := persistedGraph{Version: persistVersion, Nodes: g.Nodes()}
	for _, from := range g.Nodes() {
		for _, to := range g.Successors(from) {
			doc.Edges = append(doc.Edges, persistedEdge{
				From: from, To: to, Confidence: g.Confidence(from, to),
			})
		}
	}
	sort.Slice(doc.Edges, func(i, j int) bool {
		if doc.Edges[i].From != doc.Edges[j].From {
			return doc.Edges[i].From < doc.Edges[j].From
		}
		return doc.Edges[i].To < doc.Edges[j].To
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("depgraph: encode: %w", err)
	}
	return nil
}

// ReadGraph deserializes a graph written by Write.
func ReadGraph(r io.Reader) (*Graph, error) {
	var doc persistedGraph
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("depgraph: decode: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("depgraph: unsupported format version %d", doc.Version)
	}
	g := NewGraph()
	for _, n := range doc.Nodes {
		if n == "" {
			return nil, fmt.Errorf("depgraph: empty node name")
		}
		g.AddNode(n)
	}
	for _, e := range doc.Edges {
		if e.From == "" || e.To == "" {
			return nil, fmt.Errorf("depgraph: edge with empty endpoint")
		}
		if e.Confidence < 0 || e.Confidence > 1 {
			return nil, fmt.Errorf("depgraph: edge %s->%s has confidence %v outside [0,1]", e.From, e.To, e.Confidence)
		}
		g.AddEdge(e.From, e.To, e.Confidence)
	}
	return g, nil
}

// Save writes the graph to path (the offline-discovery cache file).
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("depgraph: save: %w", err)
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("depgraph: save: %w", err)
	}
	return nil
}

// Load reads a graph previously written with Save.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("depgraph: load: %w", err)
	}
	defer f.Close()
	return ReadGraph(f)
}
