package depgraph

import (
	"sort"
)

// Packet is one passively observed network packet between two components.
// Timestamps are in seconds (fractional) since trace start.
type Packet struct {
	Time float64 `json:"time"`
	Src  string  `json:"src"`
	Dst  string  `json:"dst"`
}

// Flow is a contiguous burst of packets between one (src, dst) pair,
// delimited by inter-packet gaps.
type Flow struct {
	Src   string
	Dst   string
	Start float64
	End   float64
	Count int
}

// DiscoverConfig controls black-box dependency discovery.
type DiscoverConfig struct {
	// GapThreshold is the inter-packet gap (seconds) that splits two flows
	// between the same pair (default 0.5s). Continuous streams never pause
	// longer than this, so they collapse into one endless flow and produce
	// no usable co-occurrence evidence — reproducing the paper's System S
	// observation.
	GapThreshold float64
	// Delay is the co-occurrence window (seconds): a flow into component X
	// followed within Delay by a flow X→Y counts as evidence for edge X→Y
	// (default 1.0s).
	Delay float64
	// MinConfidence is the minimum conditional probability
	// P(flow X→Y shortly after flow into X) to accept the edge
	// (default 0.3: a balancer splitting requests across k backends
	// yields per-backend confidence ≈ 1/k).
	MinConfidence float64
	// ReplyWindow classifies a flow X→Y as a reply (and excludes it from
	// the co-occurrence analysis) when a flow Y→X started within
	// ReplyWindow seconds before it (default 0.2s).
	ReplyWindow float64
	// MinFlows is the minimum number of observed inbound flows required
	// before an edge out of a component can be trusted (default 10). The
	// paper notes black-box discovery needs a sufficient amount of trace
	// data.
	MinFlows int
	// MaxFlowDuration marks a flow as unusable for co-occurrence analysis
	// when it exceeds this duration in seconds (default 30s); such flows
	// indicate continuous streaming traffic.
	MaxFlowDuration float64
}

func (c DiscoverConfig) withDefaults() DiscoverConfig {
	if c.GapThreshold <= 0 {
		c.GapThreshold = 0.5
	}
	if c.Delay <= 0 {
		c.Delay = 1.0
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.3
	}
	if c.ReplyWindow <= 0 {
		c.ReplyWindow = 0.2
	}
	if c.MinFlows <= 0 {
		c.MinFlows = 10
	}
	if c.MaxFlowDuration <= 0 {
		c.MaxFlowDuration = 30
	}
	return c
}

// ExtractFlows groups packets into flows per (src,dst) pair using the
// configured inter-packet gap threshold.
func ExtractFlows(packets []Packet, cfg DiscoverConfig) []Flow {
	cfg = cfg.withDefaults()
	type pair struct{ src, dst string }
	byPair := make(map[pair][]float64)
	for _, p := range packets {
		k := pair{p.Src, p.Dst}
		byPair[k] = append(byPair[k], p.Time)
	}
	var flows []Flow
	for k, times := range byPair {
		sort.Float64s(times)
		cur := Flow{Src: k.src, Dst: k.dst, Start: times[0], End: times[0], Count: 1}
		for _, t := range times[1:] {
			if t-cur.End > cfg.GapThreshold {
				flows = append(flows, cur)
				cur = Flow{Src: k.src, Dst: k.dst, Start: t, End: t, Count: 1}
				continue
			}
			cur.End = t
			cur.Count++
		}
		flows = append(flows, cur)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Start != flows[j].Start {
			return flows[i].Start < flows[j].Start
		}
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	return flows
}

// Discover infers the inter-component dependency graph from a packet trace.
// An edge X→Y is added when, conditioned on a flow arriving at X, a flow
// X→Y begins within cfg.Delay with probability ≥ cfg.MinConfidence.
//
// Continuous streaming traffic (no inter-packet gaps) yields a single
// unbounded flow per pair; such flows are discarded, so a pure streaming
// application produces an empty graph.
func Discover(packets []Packet, cfg DiscoverConfig) *Graph {
	cfg = cfg.withDefaults()
	flows := ExtractFlows(packets, cfg)
	g := NewGraph()
	// Discard stream-like flows: discovery relies on discrete request/reply
	// exchanges.
	usable := flows[:0]
	for _, f := range flows {
		g.AddNode(f.Src)
		g.AddNode(f.Dst)
		if f.End-f.Start <= cfg.MaxFlowDuration {
			usable = append(usable, f)
		}
	}
	usable = dropReplies(usable, cfg.ReplyWindow)
	// Index outbound flows by source for the co-occurrence scan.
	outBySrc := make(map[string][]Flow)
	for _, f := range usable {
		outBySrc[f.Src] = append(outBySrc[f.Src], f)
	}
	// For each inbound flow into X, check whether X emits a flow to each
	// candidate Y within the delay window.
	inCount := make(map[string]int)                // X -> inbound flows
	coCount := make(map[[2]string]int)             // (X,Y) -> co-occurrences
	candidates := make(map[string]map[string]bool) // X -> {Y}
	for _, f := range usable {
		for _, out := range outBySrc[f.Dst] {
			if candidates[f.Dst] == nil {
				candidates[f.Dst] = make(map[string]bool)
			}
			candidates[f.Dst][out.Dst] = true
		}
	}
	for _, in := range usable {
		x := in.Dst
		inCount[x]++
		seen := make(map[string]bool)
		for _, out := range outBySrc[x] {
			if seen[out.Dst] {
				continue
			}
			// The outbound flow must start after (or with) the inbound
			// request and within the delay window.
			if out.Start >= in.Start && out.Start <= in.Start+cfg.Delay {
				coCount[[2]string{x, out.Dst}]++
				seen[out.Dst] = true
			}
		}
	}
	for x, ys := range candidates {
		if inCount[x] < cfg.MinFlows {
			continue
		}
		for y := range ys {
			conf := float64(coCount[[2]string{x, y}]) / float64(inCount[x])
			if conf >= cfg.MinConfidence {
				g.AddEdge(x, y, conf)
			}
		}
	}
	// Entry components receive no inbound flows, but their outbound edges
	// are directly observable: if X never appears as a destination yet
	// repeatedly opens flows to Y, record the edge with confidence from
	// flow count.
	for x, outs := range outBySrc {
		if inCount[x] > 0 {
			continue
		}
		perDst := make(map[string]int)
		for _, f := range outs {
			perDst[f.Dst]++
		}
		for y, n := range perDst {
			if n >= cfg.MinFlows {
				g.AddEdge(x, y, 1.0)
			}
		}
	}
	return g
}

// dropReplies removes flows that are responses to a just-started flow in
// the opposite direction: a flow X→Y beginning within replyWindow of a flow
// Y→X is traffic returning to the caller, not a dependency of X on Y.
func dropReplies(flows []Flow, replyWindow float64) []Flow {
	type pair struct{ src, dst string }
	starts := make(map[pair][]float64)
	for _, f := range flows {
		k := pair{f.Src, f.Dst}
		starts[k] = append(starts[k], f.Start)
	}
	for _, ts := range starts {
		sort.Float64s(ts)
	}
	out := flows[:0]
	for _, f := range flows {
		if isReply(starts[pair{f.Dst, f.Src}], f.Start, replyWindow) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// isReply reports whether sorted reverse-direction start times contain one
// in [start-replyWindow, start].
func isReply(reverseStarts []float64, start, replyWindow float64) bool {
	i := sort.SearchFloat64s(reverseStarts, start-replyWindow)
	return i < len(reverseStarts) && reverseStarts[i] <= start
}
