package apps

import (
	"math/rand"
	"testing"

	"fchain/internal/cloudsim"
	"fchain/internal/depgraph"
	"fchain/internal/metric"
)

func TestSpecsValidate(t *testing.T) {
	for _, spec := range []cloudsim.AppSpec{RUBiS(1), SystemS(1), Hadoop(1)} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestHealthyBaselines(t *testing.T) {
	// Without faults, none of the benchmarks may produce sustained SLO
	// violations under their realistic workload traces.
	builders := map[string]func(int64) cloudsim.AppSpec{
		"rubis": RUBiS, "systems": SystemS, "hadoop": Hadoop,
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				sim, err := cloudsim.New(build(seed), seed)
				if err != nil {
					t.Fatal(err)
				}
				sim.Step(1200)
				if tv, found := sim.FirstViolation(60, 5); found {
					t.Errorf("seed %d: healthy %s violated SLO at t=%d", seed, name, tv)
				}
			}
		})
	}
}

// violatesWithin injects the fault at t=600 and reports whether a sustained
// SLO violation follows within horizon ticks.
func violatesWithin(t *testing.T, spec cloudsim.AppSpec, fc FaultCase, seed int64, horizon int64) (int64, bool) {
	t.Helper()
	sim, err := cloudsim.New(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	f := fc.Make(600, rng)
	if err := sim.Inject(f); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(600 + horizon)
	return sim.FirstViolation(600, 3)
}

func TestRUBiSFaultsViolate(t *testing.T) {
	for _, fc := range RUBiSFaults() {
		fc := fc
		t.Run(fc.Name, func(t *testing.T) {
			t.Parallel()
			ok := false
			for seed := int64(1); seed <= 3; seed++ {
				if _, found := violatesWithin(t, RUBiS(seed), fc, seed, 900); found {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("RUBiS %s never violated the SLO", fc.Name)
			}
		})
	}
}

func TestSystemSFaultsViolate(t *testing.T) {
	for _, fc := range SystemSFaults() {
		fc := fc
		t.Run(fc.Name, func(t *testing.T) {
			t.Parallel()
			hits := 0
			for seed := int64(1); seed <= 4; seed++ {
				if _, found := violatesWithin(t, SystemS(seed), fc, seed, 900); found {
					hits++
				}
			}
			if hits < 3 {
				t.Errorf("System S %s violated in only %d/4 runs", fc.Name, hits)
			}
		})
	}
}

func TestHadoopFaultsViolate(t *testing.T) {
	for _, fc := range HadoopFaults() {
		fc := fc
		t.Run(fc.Name, func(t *testing.T) {
			t.Parallel()
			ok := false
			for seed := int64(1); seed <= 3; seed++ {
				if _, found := violatesWithin(t, Hadoop(seed), fc, seed, 1200); found {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("Hadoop %s never violated the progress SLO", fc.Name)
			}
		})
	}
}

func TestRUBiSDependencyDiscoverable(t *testing.T) {
	sim, err := cloudsim.New(RUBiS(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	g := depgraph.Discover(sim.DependencyTrace(600, 1), depgraph.DiscoverConfig{})
	for _, e := range [][2]string{{Web, App1}, {Web, App2}, {App1, DB}, {App2, DB}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %s->%s in %s", e[0], e[1], g)
		}
	}
}

func TestSystemSDependencyUndiscoverable(t *testing.T) {
	sim, err := cloudsim.New(SystemS(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	g := depgraph.Discover(sim.DependencyTrace(300, 1), depgraph.DiscoverConfig{})
	if !g.Empty() {
		t.Errorf("System S streaming traffic should defeat discovery, got %s", g)
	}
}

func TestSystemSFig2Propagation(t *testing.T) {
	// Fig. 2: a memory leak at PE3 propagates PE3 -> PE6 -> PE2, the last
	// hop via back-pressure (PE2 is upstream of the join PE6).
	sim, err := cloudsim.New(SystemS(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	const inject = 400
	if err := sim.Inject(cloudsim.NewMemLeak(inject, 30, "pe3")); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(1400)
	if _, found := sim.FirstViolation(inject, 3); !found {
		t.Fatal("PE3 memleak should violate the SLO")
	}
	onset := func(comp string, k metric.Kind, rel float64) int {
		s, err := sim.Series(comp, k)
		if err != nil {
			t.Fatal(err)
		}
		vals := s.Values()
		base := mean(vals[200:380])
		for i := inject; i < len(vals); i++ {
			if vals[i] > base*rel {
				return i
			}
		}
		return -1
	}
	pe3 := onset("pe3", metric.Memory, 1.2)
	pe6 := onset("pe6", metric.Memory, 1.2)
	pe2 := onset("pe2", metric.Memory, 1.2)
	if pe3 < 0 || pe6 < 0 || pe2 < 0 {
		t.Fatalf("onsets not all found: pe3=%d pe6=%d pe2=%d", pe3, pe6, pe2)
	}
	if !(pe3 < pe6 && pe6 < pe2) {
		t.Errorf("propagation order wrong: pe3=%d pe6=%d pe2=%d, want pe3<pe6<pe2", pe3, pe6, pe2)
	}
}

func mean(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func TestRUBiSBackPressureFromDB(t *testing.T) {
	// MemHog/CpuHog at the db make the *upstream* tiers abnormal — the
	// effect that defeats the Topology and Dependency baselines (Fig. 6).
	sim, err := cloudsim.New(RUBiS(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(cloudsim.NewCPUHog(600, 1.7, DB)); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(1200)
	app1Mem, _ := sim.Series(App1, metric.Memory)
	before := mean(app1Mem.Values()[400:580])
	after := mean(app1Mem.Values()[700:900])
	if after < before*1.15 {
		t.Errorf("app tier should show back-pressure symptoms: before=%v after=%v", before, after)
	}
}

func TestHadoopMetricsAreDynamic(t *testing.T) {
	// Hadoop's metrics must fluctuate more than RUBiS's (paper: "much more
	// dynamic with highly fluctuating system metrics").
	cv := func(spec cloudsim.AppSpec, comp string) float64 {
		sim, err := cloudsim.New(spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		sim.Step(600)
		s, err := sim.Series(comp, metric.DiskWrite)
		if err != nil {
			t.Fatal(err)
		}
		vals := s.Values()[100:]
		m := mean(vals)
		if m == 0 {
			return 0
		}
		var ss float64
		for _, v := range vals {
			ss += (v - m) * (v - m)
		}
		return (ss / float64(len(vals))) / (m * m)
	}
	hadoop := cv(Hadoop(4), "map1")
	rubis := cv(RUBiS(4), DB)
	if hadoop <= rubis {
		t.Errorf("hadoop disk variance (%v) should exceed rubis (%v)", hadoop, rubis)
	}
}
