// Package apps defines the three benchmark applications the FChain paper
// evaluates on — the RUBiS multi-tier online auction (EJB version), the
// Hadoop sorting job, and the IBM System S tax-calculation stream job — as
// cloudsim application specs, together with each application's fault
// catalog (paper §III-A).
//
// Topologies, SLOs, and fault points follow the paper:
//
//   - RUBiS (Fig. 5): web server → {app server 1, app server 2} → database;
//     SLO violation when mean response time exceeds 100 ms. Workload
//     modulated by a NASA-'95-like trace.
//   - Hadoop sort: three map nodes and six reduce nodes processing a fixed
//     input; SLO violation when the job makes no progress for 30 s.
//   - System S (Fig. 2): seven processing elements (PEs); PE6 joins the
//     PE3 and PE2 streams, which is what lets a fault at PE3 propagate
//     PE3 → PE6 → PE2 with the last hop caused by back-pressure; SLO
//     violation when mean per-tuple processing time exceeds 20 ms.
//     Workload modulated by a ClarkNet-'95-like trace.
package apps

import (
	"math/rand"

	"fchain/internal/cloudsim"
	"fchain/internal/workload"
)

// Component names used across the scenarios.
const (
	Web  = "web"
	App1 = "app1"
	App2 = "app2"
	DB   = "db"
)

// FaultCase describes one injectable fault type of a scenario: a factory
// producing a concrete fault (with randomized targets/parameters drawn from
// rng) starting at the given tick.
type FaultCase struct {
	// Name is the fault label used in the paper's figures (e.g. "memleak").
	Name string
	// Multi marks multi-component concurrent faults.
	Multi bool
	// LookBack overrides the FChain look-back window for this fault when
	// non-zero (the paper uses W=500 for the Hadoop DiskHog, W=100
	// otherwise).
	LookBack int
	// Make builds the fault.
	Make func(start int64, rng *rand.Rand) cloudsim.Fault
}

// RUBiS returns the three-tier auction benchmark spec. The workload trace
// is realized from the NASA-like profile with the given seed.
func RUBiS(seed int64) cloudsim.AppSpec {
	profile := workload.NASA()
	profile.Base = 80
	trace := workload.NewSynthetic(profile, 3600, seed)
	appTier := func(name string) cloudsim.ComponentSpec {
		return cloudsim.ComponentSpec{
			Name: name, CPUCores: 2, MemoryMB: 2048, NetMBps: 100, DiskMBps: 50,
			CPUCostPerReq: 0.016, MemPerReq: 0.8, NetInPerReq: 0.01, NetOutPerReq: 0.008,
			BaseMemMB: 500, ServiceTime: 0.008, QueueCap: 300,
			Downstream: []cloudsim.Edge{{To: DB, Kind: cloudsim.EdgeBalanced, Weight: 1}},
		}
	}
	return cloudsim.AppSpec{
		Name: "rubis",
		Components: []cloudsim.ComponentSpec{
			{
				Name: Web, CPUCores: 2, MemoryMB: 2048, NetMBps: 100, DiskMBps: 50,
				CPUCostPerReq: 0.003, MemPerReq: 0.4, NetInPerReq: 0.02, NetOutPerReq: 0.02,
				BaseMemMB: 300, ServiceTime: 0.002, QueueCap: 500,
				Downstream: []cloudsim.Edge{
					{To: App1, Kind: cloudsim.EdgeBalanced, Weight: 1},
					{To: App2, Kind: cloudsim.EdgeBalanced, Weight: 1},
				},
			},
			appTier(App1),
			appTier(App2),
			{
				Name: DB, CPUCores: 2, MemoryMB: 3072, NetMBps: 100, DiskMBps: 60,
				CPUCostPerReq: 0.005, MemPerReq: 1.0, NetInPerReq: 0.004, NetOutPerReq: 0.01,
				DiskReadPerReq: 0.02, DiskWritePerReq: 0.01,
				BaseMemMB: 800, ServiceTime: 0.015, QueueCap: 400,
			},
		},
		Entries:          []string{Web},
		Style:            cloudsim.RequestReply,
		SLO:              cloudsim.SLOSpec{Kind: cloudsim.SLOLatency, Threshold: 0.1},
		Trace:            trace,
		MeasurementNoise: 0.03,
	}
}

// RUBiSFaults returns the paper's RUBiS fault catalog: single-component
// MemLeak (database), CpuHog (database), NetHog (web), and multi-component
// OffloadBug (JBoss JBAS-1442) and LBBug (mod_jk 1.2.30).
func RUBiSFaults() []FaultCase {
	return []FaultCase{
		{
			Name: "memleak",
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewMemLeak(start, 28+4*rng.Float64(), DB)
			},
		},
		{
			Name: "cpuhog",
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewCPUHog(start, 1.6+0.2*rng.Float64(), DB)
			},
		},
		{
			Name: "nethog",
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewNetHog(start, 98.4+0.9*rng.Float64(), Web)
			},
		},
		{
			Name:  "offloadbug",
			Multi: true,
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewOffloadBug(start, App1, App2, 0.06+0.01*rng.Float64())
			},
		},
		{
			Name:  "lbbug",
			Multi: true,
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewLBBug(start, Web, map[string]float64{App1: 0.97, App2: 0.03}, 2.5+0.5*rng.Float64())
			},
		},
	}
}

// SystemSPEs lists the seven processing elements of the tax-calculation
// application (Fig. 2).
var SystemSPEs = []string{"pe1", "pe2", "pe3", "pe4", "pe5", "pe6", "pe7"}

// SystemS returns the IBM System S stream-processing benchmark spec.
//
// Topology (two source PEs, one join, a linear tail):
//
//	pe1 → pe3 ─┐
//	           ├→ pe6 (join) → pe5 → pe7
//	pe4 → pe2 ─┘
//
// PE6 joins the PE3 and PE2 streams. When a fault slows PE3, the join
// starves on the PE3 input; tuples from PE2 pile up in PE6's per-source
// buffer until it fills and back-pressures PE2 — reproducing the paper's
// Fig. 2 propagation PE3 → PE6 → PE2, with the last hop caused by
// back-pressure. The continuous tuple traffic defeats black-box dependency
// discovery (paper §II-C).
func SystemS(seed int64) cloudsim.AppSpec {
	profile := workload.ClarkNet()
	trace := workload.NewSynthetic(profile, 3600, seed)
	pe := func(name string, cost, svc float64, down ...cloudsim.Edge) cloudsim.ComponentSpec {
		return cloudsim.ComponentSpec{
			Name: name, CPUCores: 2, MemoryMB: 2048, NetMBps: 200, DiskMBps: 80,
			CPUCostPerReq: cost, MemPerReq: 0.5, NetInPerReq: 0.003, NetOutPerReq: 0.003,
			BaseMemMB: 300, ServiceTime: svc, QueueCap: 600,
			Downstream: down,
		}
	}
	pe6 := pe("pe6", 0.004, 0.003, cloudsim.Edge{To: "pe5", Kind: cloudsim.EdgeAll})
	pe6.Join = true
	return cloudsim.AppSpec{
		Name: "systems",
		Components: []cloudsim.ComponentSpec{
			pe("pe1", 0.003, 0.002, cloudsim.Edge{To: "pe3", Kind: cloudsim.EdgeAll}),
			pe("pe4", 0.003, 0.002, cloudsim.Edge{To: "pe2", Kind: cloudsim.EdgeAll}),
			pe("pe3", 0.003, 0.002, cloudsim.Edge{To: "pe6", Kind: cloudsim.EdgeAll}),
			pe("pe2", 0.003, 0.002, cloudsim.Edge{To: "pe6", Kind: cloudsim.EdgeAll}),
			pe6,
			pe("pe5", 0.003, 0.002, cloudsim.Edge{To: "pe7", Kind: cloudsim.EdgeAll}),
			pe("pe7", 0.003, 0.002),
		},
		Entries:          []string{"pe1", "pe4"},
		Style:            cloudsim.Streaming,
		SLO:              cloudsim.SLOSpec{Kind: cloudsim.SLOLatency, Threshold: 0.02},
		Trace:            trace,
		MeasurementNoise: 0.03,
	}
}

// SystemSFaults returns the paper's System S fault catalog: MemLeak,
// CpuHog, and Bottleneck in a randomly selected PE, plus concurrent
// MemLeak and concurrent CpuHog in two randomly selected PEs.
func SystemSFaults() []FaultCase {
	pick := func(rng *rand.Rand, n int) []string {
		idx := rng.Perm(len(SystemSPEs))[:n]
		out := make([]string, n)
		for i, j := range idx {
			out[i] = SystemSPEs[j]
		}
		return out
	}
	return []FaultCase{
		{
			Name: "memleak",
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewMemLeak(start, 26+4*rng.Float64(), pick(rng, 1)...)
			},
		},
		{
			Name: "cpuhog",
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewCPUHog(start, 1.75+0.15*rng.Float64(), pick(rng, 1)...)
			},
		},
		{
			Name: "bottleneck",
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewBottleneck(start, 0.08+0.04*rng.Float64(), pick(rng, 1)...)
			},
		},
		{
			Name:  "concurrent-memleak",
			Multi: true,
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewMemLeak(start, 26+4*rng.Float64(), pick(rng, 2)...)
			},
		},
		{
			Name:  "concurrent-cpuhog",
			Multi: true,
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewCPUHog(start, 1.75+0.15*rng.Float64(), pick(rng, 2)...)
			},
		},
	}
}

// HadoopMaps and HadoopReduces name the Hadoop sorting job's nodes: three
// map nodes processing 12 GB of RandomWriter input, six reduce nodes.
var (
	HadoopMaps    = []string{"map1", "map2", "map3"}
	HadoopReduces = []string{"reduce1", "reduce2", "reduce3", "reduce4", "reduce5", "reduce6"}
)

// Hadoop returns the Hadoop sorting benchmark spec. Hadoop's metrics are
// much more dynamic than the other applications (bursty disk I/O), which is
// what defeats simple change-point schemes in the paper's Fig. 10.
func Hadoop(seed int64) cloudsim.AppSpec {
	profile := workload.Profile{
		Name:      "hadoop-splits",
		Base:      90,
		NoiseFrac: 0.15,
		NoisePhi:  0.7,
		ShortAmp:  0.15, ShortPeriod: 60,
		BurstRate: 0.015, BurstAmp: 0.35, BurstLen: 6,
	}
	trace := workload.NewSynthetic(profile, 3600, seed)
	var comps []cloudsim.ComponentSpec
	var entries []string
	for _, m := range HadoopMaps {
		var shuffle []cloudsim.Edge
		for _, r := range HadoopReduces {
			shuffle = append(shuffle, cloudsim.Edge{To: r, Kind: cloudsim.EdgeBalanced, Weight: 1})
		}
		comps = append(comps, cloudsim.ComponentSpec{
			Name: m, CPUCores: 2, MemoryMB: 2048, NetMBps: 120, DiskMBps: 60,
			CPUCostPerReq: 0.02, MemPerReq: 0.4, NetInPerReq: 0.01, NetOutPerReq: 0.05,
			DiskReadPerReq: 0.5, DiskWritePerReq: 0.3,
			BaseMemMB: 400, ServiceTime: 0.05, QueueCap: 250,
			// Shuffle waves: map output moves in periodic bulk transfers.
			// The job's maps share one wave cadence, so concurrent faults
			// manifest with the same shape on every map.
			DispatchEvery: 18, DispatchPhase: 0,
			Downstream: shuffle,
		})
		entries = append(entries, m)
	}
	for _, r := range HadoopReduces {
		comps = append(comps, cloudsim.ComponentSpec{
			Name: r, CPUCores: 2, MemoryMB: 2048, NetMBps: 120, DiskMBps: 60,
			CPUCostPerReq: 0.03, MemPerReq: 1.2, NetInPerReq: 0.05, NetOutPerReq: 0.02,
			DiskReadPerReq: 0.1, DiskWritePerReq: 0.4,
			BaseMemMB: 450, ServiceTime: 0.08, QueueCap: 800,
		})
	}
	return cloudsim.AppSpec{
		Name:             "hadoop",
		Components:       comps,
		Entries:          entries,
		Style:            cloudsim.RequestReply,
		SLO:              cloudsim.SLOSpec{Kind: cloudsim.SLOProgress, StallWindow: 30, StallFraction: 0.12},
		Trace:            trace,
		MeasurementNoise: 0.08,
	}
}

// HadoopFaults returns the paper's Hadoop fault catalog: concurrent
// MemLeak, CpuHog (infinite loop), and DiskHog (Domain-0 disk-intensive
// program) injected into all three map nodes. The DiskHog manifests slowly,
// so it carries a 500 s look-back override.
func HadoopFaults() []FaultCase {
	return []FaultCase{
		{
			Name:  "concurrent-memleak",
			Multi: true,
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewMemLeak(start, 38+6*rng.Float64(), HadoopMaps...)
			},
		},
		{
			Name:  "concurrent-cpuhog",
			Multi: true,
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewCPUHog(start, 1.96+0.03*rng.Float64(), HadoopMaps...)
			},
		},
		{
			Name:     "concurrent-diskhog",
			Multi:    true,
			LookBack: 500,
			Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewDiskHog(start, 59+0.8*rng.Float64(), 280+40*rng.Float64(), HadoopMaps...)
			},
		},
	}
}
