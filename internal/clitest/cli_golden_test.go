package clitest

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"fchain/internal/golden"
)

// Wall-clock durations, ephemeral ports, and latency histograms vary run to
// run; everything else in the console output is pinned by the goldens.
var (
	addrRe = regexp.MustCompile(`127\.0\.0\.1:\d+`)
	durRe  = regexp.MustCompile(`\b\d+(?:\.\d+)?(?:ns|µs|us|ms|s|m|h)\b`)
)

func normalizeCLI(out []byte) []byte {
	norm := addrRe.ReplaceAll(out, []byte("<ADDR>"))
	norm = durRe.ReplaceAll(norm, []byte("<DUR>"))
	return norm
}

// TestCLIGoldenSim pins fchain-sim's full console output for a canonical
// run. Regenerate with `go test ./... -update` after an intentional
// output or pipeline change.
func TestCLIGoldenSim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, _, _ := buildBinaries(t)
	out, err := exec.Command(simBin,
		"-app", "rubis", "-fault", "cpuhog", "-seed", "1", "-inject", "1700",
		"-parallel", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("fchain-sim: %v\n%s", err, out)
	}
	golden.Assert(t, golden.Path("sim-rubis-cpuhog.txt"), normalizeCLI(out))
}

// TestCLIGoldenMeshSim pins the scenario-factory CLI path: a generated
// 60-component mesh under a gray-disk template fault, localized with the
// mesh monitoring profile. The run is a pure function of the mesh parameter
// string and the seed, so the whole console transcript is byte-stable.
func TestCLIGoldenMeshSim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, _, _ := buildBinaries(t)
	out, err := exec.Command(simBin,
		"-mesh", "n=60,fanout=3,depth=4,seed=14", "-fault", "gray-disk",
		"-seed", "2", "-parallel", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("fchain-sim -mesh: %v\n%s", err, out)
	}
	golden.Assert(t, golden.Path("sim-mesh-gray-disk.txt"), normalizeCLI(out))
}

// consoleBlock sends one console command to the master and returns every
// output line it produced. A deliberately unknown sentinel command sent
// right behind it marks where the block ends.
func consoleBlock(t *testing.T, in io.Writer, r *bufio.Reader, cmd, sentinel string) string {
	t.Helper()
	fmt.Fprintln(in, cmd)
	fmt.Fprintln(in, sentinel)
	var b strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading console output after %q: %v\ngot so far:\n%s", cmd, err, b.String())
		}
		if strings.Contains(line, "unknown command") && strings.Contains(line, sentinel) {
			return b.String()
		}
		b.WriteString(line)
	}
}

// TestCLIGoldenMasterConsole pins the master's health and localize console
// output for the canonical RUBiS CpuHog capture, and checks the -debug-addr
// endpoints end to end (healthz up, localize counters exported).
func TestCLIGoldenMasterConsole(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, masterBin, slaveBin := buildBinaries(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "metrics.csv")
	depsPath := filepath.Join(dir, "deps.json")

	simOut, err := exec.Command(simBin,
		"-app", "rubis", "-fault", "cpuhog", "-seed", "1", "-inject", "1700",
		"-emit-csv", csvPath, "-save-deps", depsPath).CombinedOutput()
	if err != nil {
		t.Fatalf("fchain-sim: %v\n%s", err, simOut)
	}
	m := regexp.MustCompile(`SLO violation detected at t=(\d+)`).FindSubmatch(simOut)
	if m == nil {
		t.Fatalf("no tv in sim output:\n%s", simOut)
	}
	tv := string(m[1])

	master := exec.Command(masterBin, "-listen", "127.0.0.1:0", "-deps", depsPath,
		"-debug-addr", "127.0.0.1:0", "-journal", filepath.Join(dir, "master.jsonl"))
	masterIn, err := master.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	masterOut, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var masterErr strings.Builder
	master.Stderr = &masterErr
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		fmt.Fprintln(masterIn, "quit")
		master.Wait()
	}()
	reader := bufio.NewReader(masterOut)
	addr := ""
	for addr == "" {
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("reading master output: %v\nstderr:\n%s", err, masterErr.String())
		}
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
		}
	}
	// Skip the banner line so captures start at the first command response.
	if _, err := reader.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	var slaves []*exec.Cmd
	for _, comp := range []string{"web", "app1", "app2", "db"} {
		var lines []string
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, comp+",") {
				lines = append(lines, line)
			}
		}
		// -parallel 1 keeps the slaves' analysis serial so nothing about
		// the machine's core count can leak into the golden output.
		slave := exec.Command(slaveBin, "-name", "host-"+comp, "-components", comp, "-master", addr,
			"-parallel", "1")
		slave.Stdin = strings.NewReader(strings.Join(lines, "\n"))
		if err := slave.Start(); err != nil {
			t.Fatal(err)
		}
		slaves = append(slaves, slave)
	}
	defer func() {
		for _, s := range slaves {
			s.Process.Kill()
			s.Wait()
		}
	}()
	registered := 0
	deadline := time.Now().Add(30 * time.Second)
	for registered < 4 && time.Now().Before(deadline) {
		block := consoleBlock(t, masterIn, reader, "slaves", "sync-slaves")
		registered = strings.Count(block, "host-")
		if registered < 4 {
			time.Sleep(300 * time.Millisecond)
		}
	}
	if registered < 4 {
		t.Fatalf("only %d slaves registered", registered)
	}

	health := consoleBlock(t, masterIn, reader, "health", "sync-health")
	localize := consoleBlock(t, masterIn, reader, "localize "+tv, "sync-localize")
	out := "== health\n" + health + "== localize " + tv + "\n" + localize
	golden.Assert(t, golden.Path("master-console.txt"), normalizeCLI([]byte(out)))

	// The -debug-addr plumbing end to end: the structured log names the
	// debug address; its /healthz answers and /metrics exports the
	// localization counters.
	dm := regexp.MustCompile(`debug server listening" addr=(\S+)`).FindStringSubmatch(masterErr.String())
	if dm == nil {
		t.Fatalf("master log has no debug server line:\n%s", masterErr.String())
	}
	resp, err := http.Get("http://" + dm[1] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + dm[1] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`fchain_localize_total{outcome="ok"} 1`, "fchain_diagnose_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// /history serves the localization that just ran.
	resp, err = http.Get("http://" + dm[1] + "/history")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/history status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"tv": `+tv) {
		t.Errorf("/history missing the localization record:\n%s", body)
	}
}

// TestCLIGoldenMeshMasterConsole runs a generated 60-component mesh
// end-to-end through the real daemons: fchain-sim captures the mesh under a
// gray-disk template fault, then a master and three slaves — all with
// -mesh-profile so the distributed pipeline analyzes with the same
// monitoring profile the simulator localized with — replay the capture and
// the console's health and localize output is pinned byte for byte.
func TestCLIGoldenMeshMasterConsole(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, masterBin, slaveBin := buildBinaries(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "metrics.csv")
	depsPath := filepath.Join(dir, "deps.json")

	simOut, err := exec.Command(simBin,
		"-mesh", "n=60,fanout=3,depth=4,seed=14", "-fault", "gray-disk",
		"-seed", "2", "-parallel", "1",
		"-emit-csv", csvPath, "-save-deps", depsPath).CombinedOutput()
	if err != nil {
		t.Fatalf("fchain-sim -mesh: %v\n%s", err, simOut)
	}
	m := regexp.MustCompile(`SLO violation detected at t=(\d+)`).FindSubmatch(simOut)
	if m == nil {
		t.Fatalf("no tv in sim output:\n%s", simOut)
	}
	tv := string(m[1])

	master := exec.Command(masterBin, "-listen", "127.0.0.1:0", "-deps", depsPath,
		"-mesh-profile")
	masterIn, err := master.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	masterOut, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var masterErr strings.Builder
	master.Stderr = &masterErr
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		fmt.Fprintln(masterIn, "quit")
		master.Wait()
	}()
	reader := bufio.NewReader(masterOut)
	addr := ""
	for addr == "" {
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("reading master output: %v\nstderr:\n%s", err, masterErr.String())
		}
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
		}
	}
	if _, err := reader.ReadString('\n'); err != nil { // banner
		t.Fatal(err)
	}

	// Partition the mesh's components round-robin across three slaves, in
	// the order the CSV first names them so the split is deterministic.
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	perComp := make(map[string][]string)
	var order []string
	for _, line := range strings.Split(string(data), "\n") {
		comp, _, ok := strings.Cut(line, ",")
		if !ok {
			continue
		}
		if _, seen := perComp[comp]; !seen {
			order = append(order, comp)
		}
		perComp[comp] = append(perComp[comp], line)
	}
	const nSlaves = 3
	groups := make([][]string, nSlaves)     // component names per slave
	groupLines := make([][]string, nSlaves) // CSV lines per slave
	for i, comp := range order {
		groups[i%nSlaves] = append(groups[i%nSlaves], comp)
		groupLines[i%nSlaves] = append(groupLines[i%nSlaves], perComp[comp]...)
	}
	var slaves []*exec.Cmd
	var slaveErrs []string
	for i := 0; i < nSlaves; i++ {
		// -parallel 1 keeps the slaves' analysis serial so nothing about
		// the machine's core count can leak into the golden output. The
		// debug endpoint exposes the ingest counters the test's barrier
		// below polls; stderr goes to a file so the debug address can be
		// read without racing the running process.
		slave := exec.Command(slaveBin, "-name", fmt.Sprintf("mesh-host-%d", i),
			"-components", strings.Join(groups[i], ","), "-master", addr,
			"-mesh-profile", "-parallel", "1", "-debug-addr", "127.0.0.1:0")
		slave.Stdin = strings.NewReader(strings.Join(groupLines[i], "\n"))
		errPath := filepath.Join(dir, fmt.Sprintf("slave-%d.stderr", i))
		errFile, err := os.Create(errPath)
		if err != nil {
			t.Fatal(err)
		}
		slave.Stderr = errFile
		if err := slave.Start(); err != nil {
			t.Fatal(err)
		}
		errFile.Close()
		slaves = append(slaves, slave)
		slaveErrs = append(slaveErrs, errPath)
	}
	defer func() {
		for _, s := range slaves {
			s.Process.Kill()
			s.Wait()
		}
	}()
	registered := 0
	deadline := time.Now().Add(30 * time.Second)
	for registered < nSlaves && time.Now().Before(deadline) {
		block := consoleBlock(t, masterIn, reader, "slaves", "sync-slaves")
		registered = strings.Count(block, "mesh-host-")
		if registered < nSlaves {
			time.Sleep(300 * time.Millisecond)
		}
	}
	if registered < nSlaves {
		t.Fatalf("only %d slaves registered", registered)
	}

	// The slaves consume their stdin captures asynchronously, and both the
	// verdict and the console's cumulative per-component quality counters
	// depend on how much of the capture has been ingested — so the localize
	// output is only byte-stable once every slave has consumed its whole
	// feed. Each slave's fchain_ingest_samples_total must reach the number
	// of CSV lines it was fed (errors counted too, so a rejected sample
	// cannot stall the barrier forever).
	sampleRe := regexp.MustCompile(`fchain_ingest_(?:samples|errors)_total (\d+)`)
	for i, errPath := range slaveErrs {
		dbgAddr := ""
		for dbgAddr == "" && time.Now().Before(deadline) {
			raw, _ := os.ReadFile(errPath)
			if dm := regexp.MustCompile(`debug server listening" addr=(\S+)`).FindSubmatch(raw); dm != nil {
				dbgAddr = string(dm[1])
			} else {
				time.Sleep(100 * time.Millisecond)
			}
		}
		if dbgAddr == "" {
			t.Fatalf("slave %d never announced its debug server", i)
		}
		ingested := -1
		for ingested < len(groupLines[i]) && time.Now().Before(deadline) {
			resp, err := http.Get("http://" + dbgAddr + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			ingested = 0
			for _, mm := range sampleRe.FindAllSubmatch(body, -1) {
				n, _ := strconv.Atoi(string(mm[1]))
				ingested += n
			}
			if ingested < len(groupLines[i]) {
				time.Sleep(100 * time.Millisecond)
			}
		}
		if ingested < len(groupLines[i]) {
			t.Fatalf("slave %d ingested %d of %d samples before the deadline", i, ingested, len(groupLines[i]))
		}
	}

	health := consoleBlock(t, masterIn, reader, "health", "sync-health")
	localize := consoleBlock(t, masterIn, reader, "localize "+tv, "sync-localize")
	out := "== health\n" + health + "== localize " + tv + "\n" + localize
	golden.Assert(t, golden.Path("master-console-mesh.txt"), normalizeCLI([]byte(out)))
}
