// Package clitest exercises the shipped command-line binaries end to end:
// fchain-sim produces a metric capture and a dependency-graph file,
// fchain-master and fchain-slave localize from them over real TCP.
package clitest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the three commands once per test run.
func buildBinaries(t *testing.T) (simBin, masterBin, slaveBin string) {
	t.Helper()
	dir := t.TempDir()
	for _, c := range []struct{ name, pkg string }{
		{"fchain-sim", "fchain/cmd/fchain-sim"},
		{"fchain-master", "fchain/cmd/fchain-master"},
		{"fchain-slave", "fchain/cmd/fchain-slave"},
	} {
		bin := filepath.Join(dir, c.name)
		cmd := exec.Command("go", "build", "-o", bin, c.pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", c.name, err, out)
		}
	}
	return filepath.Join(dir, "fchain-sim"), filepath.Join(dir, "fchain-master"), filepath.Join(dir, "fchain-slave")
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest -> repo root
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, masterBin, slaveBin := buildBinaries(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "metrics.csv")
	depsPath := filepath.Join(dir, "deps.json")

	// 1. Generate a faulty run, its metric capture, and the dependency file.
	simOut, err := exec.Command(simBin,
		"-app", "rubis", "-fault", "cpuhog", "-seed", "1", "-inject", "1700",
		"-emit-csv", csvPath, "-save-deps", depsPath).CombinedOutput()
	if err != nil {
		t.Fatalf("fchain-sim: %v\n%s", err, simOut)
	}
	tvRe := regexp.MustCompile(`SLO violation detected at t=(\d+)`)
	m := tvRe.FindSubmatch(simOut)
	if m == nil {
		t.Fatalf("no tv in sim output:\n%s", simOut)
	}
	tv := string(m[1])

	// 2. Start the master with the dependency file.
	master := exec.Command(masterBin, "-listen", "127.0.0.1:0", "-deps", depsPath)
	masterIn, err := master.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	masterOut, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		fmt.Fprintln(masterIn, "quit")
		master.Wait()
	}()
	reader := bufio.NewReader(masterOut)
	addr := ""
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("reading master output: %v", err)
		}
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
		}
	}
	if addr == "" {
		t.Fatal("master never reported its address")
	}

	// 3. One slave per component, each fed its share of the capture.
	var slaves []*exec.Cmd
	for _, comp := range []string{"web", "app1", "app2", "db"} {
		data, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, comp+",") {
				lines = append(lines, line)
			}
		}
		slave := exec.Command(slaveBin, "-name", "host-"+comp, "-components", comp, "-master", addr)
		slave.Stdin = strings.NewReader(strings.Join(lines, "\n"))
		var slaveLog strings.Builder
		slave.Stdout = &slaveLog
		slave.Stderr = &slaveLog
		if err := slave.Start(); err != nil {
			t.Fatal(err)
		}
		slaves = append(slaves, slave)
	}
	// Poll the master until every slave has registered (they keep serving
	// after their stdin feed drains).
	registered := 0
	deadline = time.Now().Add(30 * time.Second)
	for registered < 4 && time.Now().Before(deadline) {
		fmt.Fprintln(masterIn, "slaves")
		count := 0
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				t.Fatalf("reading master output: %v", err)
			}
			if strings.Contains(line, "host-") {
				count++
			}
			if strings.Contains(line, "components total") {
				break
			}
		}
		registered = count
		if registered < 4 {
			time.Sleep(300 * time.Millisecond)
		}
	}
	if registered < 4 {
		t.Fatalf("only %d slaves registered", registered)
	}

	// 4. Trigger localization at tv and check the culprit.
	fmt.Fprintln(masterIn, "localize "+tv)
	found := false
	deadline = time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		line, err := reader.ReadString('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(line, "culprits:") {
			if !strings.Contains(line, "db(") {
				t.Errorf("diagnosis does not blame db: %s", line)
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no diagnosis line from master")
	}
	for _, s := range slaves {
		s.Process.Kill()
		s.Wait()
	}
}
