package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// readUntil consumes master console lines until one contains want, failing
// after the deadline. It returns the matching line.
func readUntil(t *testing.T, r *bufio.Reader, want string, timeout time.Duration) string {
	t.Helper()
	type res struct {
		line string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil || strings.Contains(line, want) {
				ch <- res{line, err}
				return
			}
		}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("waiting for %q: %v", want, r.err)
		}
		return r.line
	case <-time.After(timeout):
		t.Fatalf("no %q line within %v", want, timeout)
		return ""
	}
}

// journalVerdictDiagnoses returns the raw diagnosis JSON of every
// verdict_served event in the journal, keyed by source, in order.
func journalVerdictDiagnoses(t *testing.T, path string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, p := range []string{path + ".2", path + ".1", path} {
		raw, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		for _, line := range bytes.Split(raw, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var ev struct {
				Type string `json:"type"`
				Data struct {
					Source    string          `json:"source"`
					Diagnosis json.RawMessage `json:"diagnosis"`
				} `json:"data"`
			}
			if json.Unmarshal(line, &ev) != nil {
				continue
			}
			if ev.Type == "verdict_served" {
				out[ev.Data.Source] = append(out[ev.Data.Source], string(ev.Data.Diagnosis))
			}
		}
	}
	return out
}

// TestServiceKillAndRestart proves the durability story end to end with the
// real binaries: a master serves a violation verdict, dies on SIGTERM
// mid-stream (exit 0, graceful), and a restarted master with -replay
// re-serves the verdict byte-identically and re-runs a violation that was
// accepted but never served. A slave sent SIGTERM exits 0 after writing a
// final model checkpoint.
func TestServiceKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, masterBin, slaveBin := buildBinaries(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "metrics.csv")
	depsPath := filepath.Join(dir, "deps.json")
	journalPath := filepath.Join(dir, "service.jsonl")

	simOut, err := exec.Command(simBin,
		"-app", "rubis", "-fault", "cpuhog", "-seed", "1", "-inject", "1700",
		"-emit-csv", csvPath, "-save-deps", depsPath).CombinedOutput()
	if err != nil {
		t.Fatalf("fchain-sim: %v\n%s", err, simOut)
	}
	m := regexp.MustCompile(`SLO violation detected at t=(\d+)`).FindSubmatch(simOut)
	if m == nil {
		t.Fatalf("no tv in sim output:\n%s", simOut)
	}
	tv := string(m[1])

	// First master life: service mode with a journal and a closed namespace.
	master := exec.Command(masterBin, "-listen", "127.0.0.1:0", "-deps", depsPath,
		"-journal", journalPath, "-tenants", "t1,t2", "-drain", "5s")
	masterIn, err := master.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	masterOut, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var masterErr strings.Builder
	master.Stderr = &masterErr
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	reader := bufio.NewReader(masterOut)
	line := readUntil(t, reader, "listening on ", 10*time.Second)
	addr := strings.TrimSpace(line[strings.Index(line, "listening on ")+len("listening on "):])

	// One slave per component; host-db also checkpoints for the slave
	// shutdown check.
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpt-db")
	if err := os.Mkdir(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var slaves []*exec.Cmd
	var dbSlave *exec.Cmd
	var dbOut strings.Builder
	for _, comp := range []string{"web", "app1", "app2", "db"} {
		var lines []string
		for _, l := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(l, comp+",") {
				lines = append(lines, l)
			}
		}
		args := []string{"-name", "host-" + comp, "-components", comp, "-master", addr}
		if comp == "db" {
			args = append(args, "-checkpoint-dir", ckptDir)
		}
		slave := exec.Command(slaveBin, args...)
		slave.Stdin = strings.NewReader(strings.Join(lines, "\n"))
		if comp == "db" {
			slave.Stdout = &dbOut
			slave.Stderr = &dbOut
		}
		if err := slave.Start(); err != nil {
			t.Fatal(err)
		}
		slaves = append(slaves, slave)
		if comp == "db" {
			dbSlave = slave
		}
	}
	defer func() {
		for _, s := range slaves {
			if s.ProcessState == nil {
				s.Process.Kill()
				s.Wait()
			}
		}
	}()
	registered := 0
	deadline := time.Now().Add(30 * time.Second)
	for registered < 4 && time.Now().Before(deadline) {
		block := consoleBlock(t, masterIn, reader, "slaves", "sync-slaves")
		registered = strings.Count(block, "host-")
		if registered < 4 {
			time.Sleep(300 * time.Millisecond)
		}
	}
	if registered < 4 {
		t.Fatalf("only %d slaves registered", registered)
	}

	// Serve one violation live, then SIGTERM the master mid-stream.
	fmt.Fprintln(masterIn, "violate t1 shop "+tv)
	verdictLine := readUntil(t, reader, "verdict t1/shop", 60*time.Second)
	if !strings.Contains(verdictLine, "[live]") {
		t.Errorf("first verdict not live: %s", verdictLine)
	}
	if err := master.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	readUntil(t, reader, "graceful shutdown complete", 15*time.Second)
	if err := master.Wait(); err != nil {
		t.Fatalf("master did not exit 0 on SIGTERM: %v\nstderr:\n%s", err, masterErr.String())
	}

	// Simulate a violation accepted right before the crash but never
	// served: append its write-ahead record by hand.
	raw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	maxSeq := int64(0)
	for _, l := range bytes.Split(raw, []byte("\n")) {
		var ev struct {
			Seq int64 `json:"seq"`
		}
		if json.Unmarshal(l, &ev) == nil && ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
	}
	pending := fmt.Sprintf(`{"seq":%d,"ts_unix_ns":%d,"type":"violation_accepted","data":{"tenant":"t1","app":"shop","tv":%s}}`+"\n",
		maxSeq+1, time.Now().UnixNano(), tv)
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(pending); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Second master life: -replay restores the verdict cache and history
	// and re-runs the pending violation (served from the restored cache —
	// no slaves have re-registered yet).
	master2 := exec.Command(masterBin, "-listen", "127.0.0.1:0", "-deps", depsPath,
		"-journal", journalPath, "-tenants", "t1,t2", "-replay")
	master2In, err := master2.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	master2Out, err := master2.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var master2Err strings.Builder
	master2.Stderr = &master2Err
	if err := master2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if master2.ProcessState == nil {
			master2.Process.Kill()
			master2.Wait()
		}
	}()
	reader2 := bufio.NewReader(master2Out)
	replayLine := readUntil(t, reader2, "replayed journal:", 15*time.Second)
	if !strings.Contains(replayLine, "1 re-run (0 failed)") {
		t.Errorf("replay did not re-run the pending violation: %s", replayLine)
	}
	if !strings.Contains(replayLine, "1 verdicts cached") {
		t.Errorf("replay did not restore the served verdict: %s", replayLine)
	}
	readUntil(t, reader2, "listening on ", 10*time.Second)

	// The pre-crash verdict re-serves from cache, and history carries the
	// restored tenant/app-tagged record.
	fmt.Fprintln(master2In, "violate t1 shop "+tv)
	cachedLine := readUntil(t, reader2, "verdict t1/shop", 15*time.Second)
	if !strings.Contains(cachedLine, "[cache]") {
		t.Errorf("restarted master did not serve from restored cache: %s", cachedLine)
	}
	histBlock := consoleBlock(t, master2In, reader2, "history", "sync-history")
	if !strings.Contains(histBlock, "[t1/shop]") {
		t.Errorf("restored history lacks the tenant/app tag:\n%s", histBlock)
	}
	fmt.Fprintln(master2In, "quit")
	if err := master2.Wait(); err != nil {
		t.Fatalf("restarted master exit: %v\nstderr:\n%s", err, master2Err.String())
	}

	// Byte-identical re-serving: every verdict_served record for the
	// violation — live, replay, cache — carries the same diagnosis bytes.
	diags := journalVerdictDiagnoses(t, journalPath)
	if len(diags["live"]) != 1 || len(diags["replay"]) != 1 || len(diags["cache"]) != 1 {
		t.Fatalf("verdict_served events by source = live:%d replay:%d cache:%d, want 1 each",
			len(diags["live"]), len(diags["replay"]), len(diags["cache"]))
	}
	for _, source := range []string{"replay", "cache"} {
		if diags[source][0] != diags["live"][0] {
			t.Errorf("%s verdict not byte-identical to live:\n%s\n%s",
				source, diags["live"][0], diags[source][0])
		}
	}

	// Slave graceful shutdown: SIGTERM exits 0 after a final checkpoint.
	if err := dbSlave.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := dbSlave.Wait(); err != nil {
		t.Fatalf("slave did not exit 0 on SIGTERM: %v\noutput:\n%s", err, dbOut.String())
	}
	if !strings.Contains(dbOut.String(), "graceful shutdown complete") {
		t.Errorf("slave shutdown message missing:\n%s", dbOut.String())
	}
	entries, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("no checkpoint written by SIGTERM shutdown")
	}
}
