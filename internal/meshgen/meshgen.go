// Package meshgen generates parameterized microservice meshes as cloudsim
// application specs: layered service topologies of 100–1000 components with
// configurable fan-out, depth, feedback cycles, and multi-tenant host
// sharing.
//
// The FChain paper evaluates on three small fixed applications; meshgen
// provides the scenario-factory side of the matrix evaluation (ROADMAP item
// 4): every mesh is a pure function of its Params — the same seed yields a
// byte-identical spec — so (topology-size × fault-template) accuracy cells
// are reproducible.
//
// Design points the generator guarantees:
//
//   - a single entry gateway; every component reachable from it,
//   - forward out-degree bounded by FanOut; layer widths grow at most
//     FanOut-fold, deepening past the requested depth when the component
//     count exceeds the requested depth's capacity,
//   - every component sized so its design-point utilization at the base
//     arrival rate is Util (≈0.35): per-request CPU cost is derived from the
//     component's steady-state flow share, so faults that saturate any one
//     component breach the latency SLO regardless of how wide its layer is,
//   - feedback edges (cycle probability) are low-volume EdgeAll links
//     (2% sampling) pointing at least one layer up, so request loops carry
//     negligible extra load but create genuine cyclic dependencies,
//   - components are packed onto shared simulated hosts (multi-tenancy), the
//     substrate for noisy-neighbor faults.
package meshgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"fchain/internal/cloudsim"
	"fchain/internal/depgraph"
	"fchain/internal/workload"
)

// Params are the generator knobs. The zero value of any field selects its
// default; Generate normalizes out-of-range values instead of failing.
type Params struct {
	// Components is the total component count including the entry gateway
	// (default 200, clamped to [4, 2000]).
	Components int
	// FanOut bounds every component's forward out-degree (default 3).
	FanOut int
	// Depth is the requested layer count including the entry layer (default
	// 5). When Components exceeds the capacity reachable with FanOut-fold
	// layer growth, the mesh deepens past Depth rather than violating the
	// fan-out bound.
	Depth int
	// CycleProb is the per-component probability (layers ≥ 2) of one
	// feedback edge to a random upper layer (default 0).
	CycleProb float64
	// Hosts is the number of simulated physical hosts the components are
	// packed onto (default Components/4, min 1).
	Hosts int
	// Seed drives every random draw (default 1).
	Seed int64
	// BaseRate is the mean external arrival rate in req/s (default 60).
	BaseRate float64
	// Util is the design-point utilization of every component at BaseRate
	// (default 0.35, clamped to [0.05, 0.8]).
	Util float64
}

func (p Params) withDefaults() Params {
	if p.Components == 0 {
		p.Components = 200
	}
	if p.Components < 4 {
		p.Components = 4
	}
	if p.Components > 2000 {
		p.Components = 2000
	}
	if p.FanOut < 1 {
		p.FanOut = 3
	}
	if p.Depth < 2 {
		p.Depth = 5
	}
	if p.CycleProb < 0 {
		p.CycleProb = 0
	}
	if p.CycleProb > 1 {
		p.CycleProb = 1
	}
	if p.Hosts < 1 {
		p.Hosts = p.Components / 4
		if p.Hosts < 1 {
			p.Hosts = 1
		}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BaseRate <= 0 {
		p.BaseRate = 60
	}
	if p.Util <= 0 {
		p.Util = 0.35
	}
	if p.Util < 0.05 {
		p.Util = 0.05
	}
	if p.Util > 0.8 {
		p.Util = 0.8
	}
	return p
}

// String renders the normalized knobs in ParseParams form.
func (p Params) String() string {
	return fmt.Sprintf("n=%d,fanout=%d,depth=%d,cycle=%g,hosts=%d,seed=%d,rate=%g,util=%g",
		p.Components, p.FanOut, p.Depth, p.CycleProb, p.Hosts, p.Seed, p.BaseRate, p.Util)
}

// ParseParams parses the CLI mesh spec string, e.g.
// "n=200,fanout=3,depth=5,seed=7,cycle=0.05". Recognized keys: n (or
// components), fanout, depth, cycle, hosts, seed, rate, util. Omitted keys
// take their defaults; unknown keys are an error.
func ParseParams(s string) (Params, error) {
	var p Params
	if strings.TrimSpace(s) == "" {
		return p.withDefaults(), nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return p, fmt.Errorf("meshgen: malformed mesh parameter %q (want key=value)", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "n", "components":
			v, err := strconv.Atoi(val)
			if err != nil {
				return p, fmt.Errorf("meshgen: %s=%q: %w", key, val, err)
			}
			p.Components = v
		case "fanout":
			v, err := strconv.Atoi(val)
			if err != nil {
				return p, fmt.Errorf("meshgen: fanout=%q: %w", val, err)
			}
			p.FanOut = v
		case "depth":
			v, err := strconv.Atoi(val)
			if err != nil {
				return p, fmt.Errorf("meshgen: depth=%q: %w", val, err)
			}
			p.Depth = v
		case "hosts":
			v, err := strconv.Atoi(val)
			if err != nil {
				return p, fmt.Errorf("meshgen: hosts=%q: %w", val, err)
			}
			p.Hosts = v
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("meshgen: seed=%q: %w", val, err)
			}
			p.Seed = v
		case "cycle":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return p, fmt.Errorf("meshgen: cycle=%q: %w", val, err)
			}
			p.CycleProb = v
		case "rate":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return p, fmt.Errorf("meshgen: rate=%q: %w", val, err)
			}
			p.BaseRate = v
		case "util":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return p, fmt.Errorf("meshgen: util=%q: %w", val, err)
			}
			p.Util = v
		default:
			return p, fmt.Errorf("meshgen: unknown mesh parameter %q", key)
		}
	}
	return p.withDefaults(), nil
}

// Mesh is one generated microservice mesh: the simulation spec, the layer
// structure, the multi-tenant host packing, and the design-point flow model
// the fault templates scale their magnitudes from.
type Mesh struct {
	// Params are the normalized knobs the mesh was generated from.
	Params Params
	// Spec is the cloudsim application; its Trace is realized from
	// Params.Seed — use SpecWithTrace to re-realize the workload for an
	// evaluation run seed while keeping the topology fixed.
	Spec cloudsim.AppSpec
	// Layers lists component names per layer, entry layer first.
	Layers [][]string
	// HostOf maps every component to its simulated physical host.
	HostOf map[string]string
	// Flow is the design-point steady-state request rate through each
	// component at BaseRate arrivals.
	Flow map[string]float64
	// CycleEdges counts the feedback edges the cycle probability produced.
	CycleEdges int

	hostComps map[string][]string
	profile   workload.Profile
}

// EntryName is the mesh's single entry gateway component.
const EntryName = "gw"

// Generate builds the mesh for the given knobs. It is deterministic: equal
// (normalized) Params produce byte-identical meshes.
func Generate(p Params) (*Mesh, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	// 1. Layer widths: grow at most FanOut-fold per layer, aiming to spread
	// the remainder evenly over the requested depth, deepening when the
	// requested depth cannot hold Components under the fan-out bound.
	widths := []int{1}
	remaining := p.Components - 1
	for l := 1; remaining > 0; l++ {
		maxw := widths[l-1] * p.FanOut
		w := maxw
		if l < p.Depth-1 {
			layersLeft := p.Depth - l
			ideal := (remaining + layersLeft - 1) / layersLeft
			if ideal < w {
				w = ideal
			}
		}
		if w > remaining {
			w = remaining
		}
		if w < 1 {
			w = 1
		}
		widths = append(widths, w)
		remaining -= w
	}

	layers := make([][]string, len(widths))
	layers[0] = []string{EntryName}
	for l := 1; l < len(widths); l++ {
		layers[l] = make([]string, widths[l])
		for i := range layers[l] {
			layers[l][i] = fmt.Sprintf("m%02d-%03d", l, i)
		}
	}

	// 2. Forward edges, layer by layer: first cover every next-layer
	// component with exactly one parent (shuffled round-robin, so each
	// parent gets at most ceil(next/cur) ≤ FanOut coverage edges), then top
	// parents up with extra random edges to a drawn degree ≤ FanOut.
	edges := make(map[string][]string)            // forward adjacency, construction order
	hasEdge := make(map[string]map[string]bool)   // dedupe
	addEdge := func(from, to string) {
		m := hasEdge[from]
		if m == nil {
			m = make(map[string]bool)
			hasEdge[from] = m
		}
		if m[to] {
			return
		}
		m[to] = true
		edges[from] = append(edges[from], to)
	}
	for l := 0; l < len(layers)-1; l++ {
		cur, next := layers[l], layers[l+1]
		nextPerm := rng.Perm(len(next))
		curPerm := rng.Perm(len(cur))
		for j, nj := range nextPerm {
			addEdge(cur[curPerm[j%len(cur)]], next[nj])
		}
		for _, name := range cur {
			want := 1 + rng.Intn(p.FanOut)
			if want > len(next) {
				want = len(next)
			}
			for tries := 0; len(edges[name]) < want && tries < 4*p.FanOut; tries++ {
				addEdge(name, next[rng.Intn(len(next))])
			}
		}
	}

	// 3. Feedback edges: low-volume EdgeAll links at least one layer up.
	cycles := make(map[string]string)
	cycleEdges := 0
	if p.CycleProb > 0 {
		for l := 2; l < len(layers); l++ {
			for _, name := range layers[l] {
				if rng.Float64() >= p.CycleProb {
					continue
				}
				up := layers[1+rng.Intn(l-1)]
				cycles[name] = up[rng.Intn(len(up))]
				cycleEdges++
			}
		}
	}

	// 4. Design-point flow: propagate BaseRate down the layers, splitting
	// each component's throughput evenly over its balanced forward edges
	// (feedback edges carry 2% and are ignored here).
	flow := map[string]float64{EntryName: p.BaseRate}
	for _, layer := range layers {
		for _, name := range layer {
			out := edges[name]
			if len(out) == 0 {
				continue
			}
			share := flow[name] / float64(len(out))
			for _, to := range out {
				flow[to] += share
			}
		}
	}

	// 5. Component specs: per-request CPU cost derived from the flow share
	// so every component idles at Util, with mild jitter.
	const (
		cores    = 2.0
		memMB    = 1024.0
		baseMem  = 300.0
		netMBps  = 150.0
		diskMBps = 60.0
	)
	comps := make([]cloudsim.ComponentSpec, 0, p.Components)
	svcTimes := make(map[string]float64, p.Components)
	costJitter := make(map[string]float64, p.Components)
	for _, layer := range layers {
		for _, name := range layer {
			f := flow[name]
			if f < 0.05 {
				f = 0.05
			}
			jit := 0.9 + 0.2*rng.Float64()
			svc := 0.004 + 0.004*rng.Float64()
			svcTimes[name] = svc
			costJitter[name] = jit
			cs := cloudsim.ComponentSpec{
				Name:            name,
				CPUCores:        cores,
				MemoryMB:        memMB,
				NetMBps:         netMBps,
				DiskMBps:        diskMBps,
				CPUCostPerReq:   round6(p.Util * cores / f * jit),
				MemPerReq:       0.5,
				NetInPerReq:     0.012,
				NetOutPerReq:    0.01,
				DiskReadPerReq:  0.02,
				DiskWritePerReq: 0.012,
				BaseMemMB:       baseMem,
				ServiceTime:     round6(svc),
				QueueCap:        400,
			}
			for _, to := range edges[name] {
				cs.Downstream = append(cs.Downstream, cloudsim.Edge{To: to, Kind: cloudsim.EdgeBalanced, Weight: 1})
			}
			if up, ok := cycles[name]; ok {
				cs.Downstream = append(cs.Downstream, cloudsim.Edge{To: up, Kind: cloudsim.EdgeAll, Fanout: 0.02})
			}
			comps = append(comps, cs)
		}
	}

	// 6. SLO threshold: 3× the analytic design-point end-to-end latency
	// (mirroring the simulator's latency walk with every component at Util),
	// so normal workload variation stays well clear while any saturated
	// component breaches it.
	base := analyticE2E(comps, svcTimes, p.Util)
	threshold := math.Ceil(base*3*1000) / 1000
	if threshold < 0.05 {
		threshold = 0.05
	}

	// 7. Multi-tenant host packing: shuffled round-robin partition.
	names := make([]string, 0, p.Components)
	for _, layer := range layers {
		names = append(names, layer...)
	}
	hostOf := make(map[string]string, p.Components)
	hostComps := make(map[string][]string)
	for i, idx := range rng.Perm(len(names)) {
		host := fmt.Sprintf("host-%03d", i%p.Hosts)
		hostOf[names[idx]] = host
		hostComps[host] = append(hostComps[host], names[idx])
	}
	for _, comps := range hostComps {
		sort.Strings(comps)
	}

	// Periodic components (diurnal + short cycle) are fine: the FFT
	// predictability filter removes them. Spontaneous bursts are not — a
	// burst shortly before an injection plants a pre-injection changepoint
	// that steals the propagation chain's source slot. Mesh scenarios keep
	// the workload burst-free; deliberate workload shifts are what the
	// faultlib trap templates are for.
	profile := workload.Profile{
		Name:          "mesh",
		Base:          p.BaseRate,
		DiurnalAmp:    0.18,
		DiurnalPeriod: 1800,
		ShortAmp:      0.08,
		ShortPeriod:   300,
		NoiseFrac:     0.04,
		NoisePhi:      0.8,
	}
	m := &Mesh{
		Params: p,
		Spec: cloudsim.AppSpec{
			Name:             fmt.Sprintf("mesh-n%d", p.Components),
			Components:       comps,
			Entries:          []string{EntryName},
			Style:            cloudsim.RequestReply,
			SLO:              cloudsim.SLOSpec{Kind: cloudsim.SLOLatency, Threshold: threshold},
			Trace:            workload.NewSynthetic(profile, 3600, p.Seed),
			MeasurementNoise: 0.03,
		},
		Layers:     layers,
		HostOf:     hostOf,
		Flow:       flow,
		CycleEdges: cycleEdges,
		hostComps:  hostComps,
		profile:    profile,
	}
	if err := m.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("meshgen: generated spec invalid: %w", err)
	}
	return m, nil
}

// analyticE2E mirrors the simulator's end-to-end latency walk with every
// component answering in svc/(1-util): balanced edges contribute the
// weighted mean of their targets, fan-out (feedback) edges the maximum, with
// a cycle guard.
func analyticE2E(comps []cloudsim.ComponentSpec, svc map[string]float64, util float64) float64 {
	byName := make(map[string]cloudsim.ComponentSpec, len(comps))
	for _, c := range comps {
		byName[c.Name] = c
	}
	memo := make(map[string]float64, len(comps))
	var walk func(name string, depth int) float64
	walk = func(name string, depth int) float64 {
		if v, ok := memo[name]; ok {
			return v
		}
		if depth > len(comps)+1 {
			return 0
		}
		c := byName[name]
		total := svc[name] / (1 - util)
		var balancedSum, balancedW, allMax float64
		for _, e := range c.Downstream {
			child := walk(e.To, depth+1)
			if e.Kind == cloudsim.EdgeAll {
				if child > allMax {
					allMax = child
				}
				continue
			}
			w := e.Weight
			if w <= 0 {
				w = 1
			}
			balancedSum += child * w
			balancedW += w
		}
		if balancedW > 0 {
			total += balancedSum / balancedW
		}
		total += allMax
		memo[name] = total
		return total
	}
	return walk(EntryName, 0)
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// SpecWithTrace returns the spec with its workload trace re-realized from
// the given seed; the topology, sizing, and SLO stay fixed. Evaluation
// campaigns use this so every trial seed sees a different workload on the
// same mesh.
func (m *Mesh) SpecWithTrace(seed int64) cloudsim.AppSpec {
	spec := m.Spec
	spec.Trace = workload.NewSynthetic(m.profile, 3600, seed)
	return spec
}

// Topology returns the ground-truth dependency graph, feedback edges
// included.
func (m *Mesh) Topology() *depgraph.Graph {
	g := depgraph.NewGraph()
	for _, c := range m.Spec.Components {
		g.AddNode(c.Name)
		for _, e := range c.Downstream {
			g.AddEdge(c.Name, e.To, 1)
		}
	}
	return g
}

// ForwardTopology returns the dependency graph without the feedback edges —
// the DAG skeleton the generator guarantees.
func (m *Mesh) ForwardTopology() *depgraph.Graph {
	g := depgraph.NewGraph()
	for _, c := range m.Spec.Components {
		g.AddNode(c.Name)
		for _, e := range c.Downstream {
			if e.Kind == cloudsim.EdgeBalanced {
				g.AddEdge(c.Name, e.To, 1)
			}
		}
	}
	return g
}

// Entry returns the entry gateway component name.
func (m *Mesh) Entry() string { return EntryName }

// Components returns every component name in layer order.
func (m *Mesh) Components() []string {
	out := make([]string, 0, len(m.Spec.Components))
	for _, c := range m.Spec.Components {
		out = append(out, c.Name)
	}
	return out
}

// SpecOf returns the component spec for name.
func (m *Mesh) SpecOf(name string) (cloudsim.ComponentSpec, bool) {
	for _, c := range m.Spec.Components {
		if c.Name == name {
			return c, true
		}
	}
	return cloudsim.ComponentSpec{}, false
}

// FlowOf returns the design-point request rate through name.
func (m *Mesh) FlowOf(name string) float64 { return m.Flow[name] }

// UpstreamsOf returns the forward-edge callers of name, sorted.
func (m *Mesh) UpstreamsOf(name string) []string {
	var out []string
	for _, c := range m.Spec.Components {
		for _, e := range c.Downstream {
			if e.To == name && e.Kind == cloudsim.EdgeBalanced {
				out = append(out, c.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Hosts returns the host names in sorted order.
func (m *Mesh) Hosts() []string {
	out := make([]string, 0, len(m.hostComps))
	for h := range m.hostComps {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// HostComps returns the components packed onto host, sorted.
func (m *Mesh) HostComps(host string) []string {
	return append([]string(nil), m.hostComps[host]...)
}

// PickComponent draws a random component from layers [minLayer, last].
// minLayer is clamped to the available depth.
func (m *Mesh) PickComponent(rng *rand.Rand, minLayer int) string {
	if minLayer < 0 {
		minLayer = 0
	}
	if minLayer > len(m.Layers)-1 {
		minLayer = len(m.Layers) - 1
	}
	var pool []string
	for _, layer := range m.Layers[minLayer:] {
		pool = append(pool, layer...)
	}
	return pool[rng.Intn(len(pool))]
}

// PickSharedHost draws a random host with at least two tenants and returns
// its components; ok=false when every host has a single tenant.
func (m *Mesh) PickSharedHost(rng *rand.Rand) ([]string, bool) {
	var eligible []string
	for _, h := range m.Hosts() {
		if len(m.hostComps[h]) >= 2 {
			eligible = append(eligible, h)
		}
	}
	if len(eligible) == 0 {
		return nil, false
	}
	return m.HostComps(eligible[rng.Intn(len(eligible))]), true
}

// String summarizes the mesh.
func (m *Mesh) String() string {
	return fmt.Sprintf("mesh n=%d layers=%d (requested depth %d) fanout<=%d cycle-edges=%d hosts=%d slo=%.3fs seed=%d",
		m.Params.Components, len(m.Layers), m.Params.Depth, m.Params.FanOut,
		m.CycleEdges, m.Params.Hosts, m.Spec.SLO.Threshold, m.Params.Seed)
}

// Fingerprint renders the entire mesh — knobs, layers, SLO, every component
// with its sizing, edges, flow, and host — as canonical text. Two meshes are
// identical iff their fingerprints are byte-equal; the property tests and
// the matrix artifact rest on this.
func (m *Mesh) Fingerprint() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "params: %s\n", m.Params)
	fmt.Fprintf(&sb, "layers:")
	for _, layer := range m.Layers {
		fmt.Fprintf(&sb, " %d", len(layer))
	}
	fmt.Fprintf(&sb, "\nslo: kind=%d threshold=%.6f\n", m.Spec.SLO.Kind, m.Spec.SLO.Threshold)
	fmt.Fprintf(&sb, "cycle-edges: %d\n", m.CycleEdges)
	for _, c := range m.Spec.Components {
		fmt.Fprintf(&sb, "comp %s host=%s flow=%.6f cpu=%.6f svc=%.6f cores=%g mem=%g net=%g disk=%g edges=[",
			c.Name, m.HostOf[c.Name], m.Flow[c.Name], c.CPUCostPerReq, c.ServiceTime,
			c.CPUCores, c.MemoryMB, c.NetMBps, c.DiskMBps)
		for i, e := range c.Downstream {
			if i > 0 {
				sb.WriteByte(' ')
			}
			kind := "bal"
			if e.Kind == cloudsim.EdgeAll {
				kind = "all"
			}
			fmt.Fprintf(&sb, "%s:%s", kind, e.To)
		}
		fmt.Fprintf(&sb, "]\n")
	}
	return []byte(sb.String())
}
