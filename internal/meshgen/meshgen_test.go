package meshgen_test

import (
	"bytes"
	"math/rand"
	"testing"

	"fchain/internal/cloudsim"
	"fchain/internal/meshgen"
)

// TestParseParams pins the CLI mesh-spec grammar.
func TestParseParams(t *testing.T) {
	p, err := meshgen.ParseParams("n=200,fanout=3,depth=5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Components != 200 || p.FanOut != 3 || p.Depth != 5 || p.Seed != 7 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Hosts != 50 {
		t.Errorf("default hosts = %d, want n/4 = 50", p.Hosts)
	}
	if p.BaseRate != 60 || p.Util != 0.35 {
		t.Errorf("defaults not applied: %+v", p)
	}

	if _, err := meshgen.ParseParams("n=100,bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := meshgen.ParseParams("n"); err == nil {
		t.Error("malformed pair accepted")
	}
	if _, err := meshgen.ParseParams("n=abc"); err == nil {
		t.Error("non-numeric value accepted")
	}
	empty, err := meshgen.ParseParams("")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Components != 200 {
		t.Errorf("empty spec should yield defaults, got %+v", empty)
	}
}

// propertyParams derives one generator parameter set per seed, sweeping the
// knob space (components 100–1000, fan-out 2–5, depth 3–7, hosts, cycles).
func propertyParams(seed int64) meshgen.Params {
	rng := rand.New(rand.NewSource(seed * 101))
	return meshgen.Params{
		Components: 100 + rng.Intn(901),
		FanOut:     2 + rng.Intn(4),
		Depth:      3 + rng.Intn(5),
		CycleProb:  0, // cycle-specific properties are tested separately
		Hosts:      1 + rng.Intn(64),
		Seed:       seed,
	}
}

// TestMeshProperties checks the generator's contract over 50 seeds:
//   - same seed ⇒ byte-identical mesh (fingerprint equality),
//   - cycle-prob 0 ⇒ the topology is a DAG,
//   - forward out-degree ≤ FanOut and longest path = layer count − 1,
//   - every component reachable from the entry,
//   - the host partition covers every component exactly once,
//   - the spec validates and the flow model conserves the base rate.
func TestMeshProperties(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		p := propertyParams(seed)
		m, err := meshgen.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m2, err := meshgen.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: regenerate: %v", seed, err)
		}
		if !bytes.Equal(m.Fingerprint(), m2.Fingerprint()) {
			t.Fatalf("seed %d: same params produced different meshes", seed)
		}

		if got := len(m.Spec.Components); got != p.Components {
			t.Fatalf("seed %d: %d components, want %d", seed, got, p.Components)
		}
		if err := m.Spec.Validate(); err != nil {
			t.Fatalf("seed %d: generated spec invalid: %v", seed, err)
		}

		// DAG when cycle-prob is zero.
		topo := m.Topology()
		if !topo.IsAcyclic() {
			t.Fatalf("seed %d: cycle-prob 0 produced a cyclic topology", seed)
		}
		if m.CycleEdges != 0 {
			t.Fatalf("seed %d: cycle-prob 0 produced %d cycle edges", seed, m.CycleEdges)
		}

		// Fan-out bound on forward edges; layer widths grow ≤ FanOut-fold.
		layerOf := make(map[string]int)
		for l, layer := range m.Layers {
			for _, name := range layer {
				layerOf[name] = l
			}
		}
		for _, c := range m.Spec.Components {
			forward := 0
			for _, e := range c.Downstream {
				if e.Kind != cloudsim.EdgeBalanced {
					continue
				}
				forward++
				if layerOf[e.To] != layerOf[c.Name]+1 {
					t.Fatalf("seed %d: forward edge %s→%s skips layers", seed, c.Name, e.To)
				}
			}
			if forward > p.FanOut {
				t.Fatalf("seed %d: %s has forward out-degree %d > fanout %d", seed, c.Name, forward, p.FanOut)
			}
		}
		for l := 1; l < len(m.Layers); l++ {
			if len(m.Layers[l]) > len(m.Layers[l-1])*p.FanOut {
				t.Fatalf("seed %d: layer %d width %d exceeds %d×fanout", seed, l, len(m.Layers[l]), len(m.Layers[l-1]))
			}
		}
		// Depth respected: deepening only happens when the requested depth
		// cannot hold the component count under the fan-out bound.
		if len(m.Layers) < p.Depth && countComps(m.Layers) == p.Components {
			capacity := 1
			width := 1
			for l := 1; l < p.Depth; l++ {
				width *= p.FanOut
				capacity += width
			}
			if p.Components <= capacity && len(m.Layers) != p.Depth {
				t.Fatalf("seed %d: %d layers for depth %d, n=%d fits", seed, len(m.Layers), p.Depth, p.Components)
			}
		}

		// Reachability from the entry.
		for _, c := range m.Spec.Components {
			if !topo.HasDirectedPath(m.Entry(), c.Name) {
				t.Fatalf("seed %d: %s unreachable from entry", seed, c.Name)
			}
		}

		// Host partition: every component exactly once, host count ≤ Hosts.
		seen := make(map[string]int)
		for _, h := range m.Hosts() {
			for _, c := range m.HostComps(h) {
				seen[c]++
			}
		}
		if len(m.Hosts()) > p.Hosts {
			t.Fatalf("seed %d: %d hosts, want <= %d", seed, len(m.Hosts()), p.Hosts)
		}
		for _, c := range m.Spec.Components {
			if seen[c.Name] != 1 {
				t.Fatalf("seed %d: component %s appears %d times in the host partition", seed, c.Name, seen[c.Name])
			}
			if m.HostOf[c.Name] == "" {
				t.Fatalf("seed %d: component %s has no host", seed, c.Name)
			}
		}
		if len(seen) != p.Components {
			t.Fatalf("seed %d: host partition covers %d of %d components", seed, len(seen), p.Components)
		}

		// Flow conservation: sink inflow sums to the base rate (balanced
		// forward edges split flow, nothing is created or destroyed).
		var sinkFlow float64
		for _, c := range m.Spec.Components {
			forward := 0
			for _, e := range c.Downstream {
				if e.Kind == cloudsim.EdgeBalanced {
					forward++
				}
			}
			if forward == 0 {
				sinkFlow += m.FlowOf(c.Name)
			}
		}
		if diff := sinkFlow - m.Params.BaseRate; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("seed %d: sink flow %.6f != base rate %.6f", seed, sinkFlow, m.Params.BaseRate)
		}
	}
}

func countComps(layers [][]string) int {
	n := 0
	for _, l := range layers {
		n += len(l)
	}
	return n
}

// TestMeshCycles checks the cycle knob: positive probability eventually
// produces feedback edges, the topology stops being a DAG, and the forward
// skeleton stays acyclic.
func TestMeshCycles(t *testing.T) {
	m, err := meshgen.Generate(meshgen.Params{Components: 300, FanOut: 3, Depth: 6, CycleProb: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.CycleEdges == 0 {
		t.Fatal("cycle-prob 0.3 over 300 components produced no feedback edges")
	}
	if m.Topology().IsAcyclic() {
		t.Error("topology with feedback edges reported acyclic")
	}
	if !m.ForwardTopology().IsAcyclic() {
		t.Error("forward skeleton must stay a DAG")
	}
	// Feedback edges are low-volume EdgeAll links pointing strictly up.
	layerOf := make(map[string]int)
	for l, layer := range m.Layers {
		for _, name := range layer {
			layerOf[name] = l
		}
	}
	for _, c := range m.Spec.Components {
		for _, e := range c.Downstream {
			if e.Kind != cloudsim.EdgeAll {
				continue
			}
			if layerOf[e.To] >= layerOf[c.Name] {
				t.Errorf("feedback edge %s→%s does not point up", c.Name, e.To)
			}
			if e.Fanout >= 0.5 {
				t.Errorf("feedback edge %s→%s fanout %.2f too heavy", c.Name, e.To, e.Fanout)
			}
		}
	}
}

// TestMeshHelpers covers the accessors fault templates build on.
func TestMeshHelpers(t *testing.T) {
	m, err := meshgen.Generate(meshgen.Params{Components: 100, FanOut: 3, Depth: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Entry() != meshgen.EntryName {
		t.Errorf("entry = %q", m.Entry())
	}
	if m.FlowOf(m.Entry()) != m.Params.BaseRate {
		t.Errorf("entry flow = %v, want base rate", m.FlowOf(m.Entry()))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		c := m.PickComponent(rng, 1)
		if c == m.Entry() {
			t.Fatal("PickComponent(minLayer=1) returned the entry")
		}
		ups := m.UpstreamsOf(c)
		if len(ups) == 0 {
			t.Fatalf("%s has no upstream callers", c)
		}
	}
	comps, ok := m.PickSharedHost(rng)
	if !ok || len(comps) < 2 {
		t.Fatalf("PickSharedHost = %v, %v", comps, ok)
	}
	if _, ok := m.SpecOf("no-such"); ok {
		t.Error("SpecOf accepted an unknown name")
	}
	spec, ok := m.SpecOf(comps[0])
	if !ok || spec.Name != comps[0] {
		t.Errorf("SpecOf(%q) = %+v, %v", comps[0], spec.Name, ok)
	}

	// SpecWithTrace re-realizes the workload but keeps topology and SLO.
	s1, s2 := m.SpecWithTrace(1), m.SpecWithTrace(2)
	if s1.SLO != s2.SLO || len(s1.Components) != len(s2.Components) {
		t.Error("SpecWithTrace changed topology or SLO")
	}
	same := true
	for tck := int64(0); tck < 600; tck++ {
		if s1.Trace.Rate(tck) != s2.Trace.Rate(tck) {
			same = false
			break
		}
	}
	if same {
		t.Error("SpecWithTrace with different seeds produced identical traces")
	}
	if s3 := m.SpecWithTrace(1); s3.Trace.Rate(123) != s1.Trace.Rate(123) {
		t.Error("SpecWithTrace is not deterministic per seed")
	}
}
