package ingest

import (
	"math"
	"testing"
)

// drain pushes a clean in-order stream and returns everything released,
// including the final flush.
func drain(s *Sanitizer, samples []Sample, flushTo int64) []Sample {
	var out []Sample
	for _, smp := range samples {
		out = append(out, s.Push(smp.T, smp.V)...)
	}
	out = append(out, s.Flush(flushTo)...)
	return out
}

func seq(start int64, n int, f func(i int) float64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{T: start + int64(i), V: f(i)}
	}
	return out
}

func TestCleanStreamPassesThrough(t *testing.T) {
	s := NewSanitizer(Config{})
	in := seq(100, 50, func(i int) float64 { return float64(i) })
	out := drain(s, in, 200)
	if len(out) != len(in) {
		t.Fatalf("released %d samples, want %d", len(out), len(in))
	}
	for i, smp := range out {
		if smp.T != in[i].T || smp.V != in[i].V || smp.Filled || smp.GapBefore != 0 {
			t.Fatalf("sample %d = %+v, want %+v clean", i, smp, in[i])
		}
	}
	st := s.Stats()
	if st.Accepted != 50 || st.Dropped() != 0 || st.Score() != 1 {
		t.Errorf("clean stream stats polluted: %v", st)
	}
}

func TestRejectsNaNAndInf(t *testing.T) {
	s := NewSanitizer(Config{})
	for i, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := s.Push(int64(i), v); len(got) != 0 {
			t.Errorf("non-finite value released: %v", got)
		}
	}
	if st := s.Stats(); st.DroppedInvalid != 3 || st.Accepted != 0 {
		t.Errorf("stats = %v, want 3 invalid drops", st)
	}
}

func TestReorderWithinWindow(t *testing.T) {
	s := NewSanitizer(Config{ReorderWindow: 5})
	var out []Sample
	// 0,1,2,4,3,5: sample 3 arrives late but within the window.
	for _, ti := range []int64{0, 1, 2, 4, 3, 5} {
		out = append(out, s.Push(ti, float64(ti))...)
	}
	out = append(out, s.Flush(10)...)
	for i, smp := range out {
		if smp.T != int64(i) {
			t.Fatalf("released order broken at %d: got t=%d", i, smp.T)
		}
		if smp.V != float64(i) {
			t.Fatalf("value mismatch at t=%d: %v", smp.T, smp.V)
		}
	}
	if st := s.Stats(); st.Reordered != 1 || st.Dropped() != 0 {
		t.Errorf("stats = %v, want exactly 1 reordered", st)
	}
}

func TestLateSampleDropped(t *testing.T) {
	s := NewSanitizer(Config{ReorderWindow: 2})
	var out []Sample
	for ti := int64(0); ti <= 10; ti++ {
		out = append(out, s.Push(ti, 1)...)
	}
	// t=3 was released long ago (10-2=8 is the release horizon).
	if got := s.Push(3, 99); len(got) != 0 {
		t.Fatalf("late sample released: %v", got)
	}
	if st := s.Stats(); st.DroppedLate != 1 {
		t.Errorf("stats = %v, want 1 late drop", st)
	}
}

func TestDuplicateTimestamps(t *testing.T) {
	s := NewSanitizer(Config{ReorderWindow: 5})
	s.Push(0, 1)
	s.Push(1, 2)
	s.Push(1, 99) // duplicate while still buffered
	out := s.Flush(10)
	if len(out) != 2 || out[1].V != 2 {
		t.Fatalf("duplicate not dropped: %+v", out)
	}
	// Duplicate of an already-released timestamp.
	if got := s.Push(1, 99); len(got) != 0 {
		t.Fatalf("released duplicate accepted: %v", got)
	}
	if st := s.Stats(); st.Duplicates != 2 {
		t.Errorf("stats = %v, want 2 duplicates", st)
	}
}

func TestShortGapInterpolated(t *testing.T) {
	s := NewSanitizer(Config{ReorderWindow: 1, MaxFillGap: 5})
	var out []Sample
	out = append(out, s.Push(0, 10)...)
	out = append(out, s.Push(4, 18)...) // 3 missing seconds: 1, 2, 3
	out = append(out, s.Flush(10)...)
	if len(out) != 5 {
		t.Fatalf("released %d samples, want 5 (2 real + 3 filled): %+v", len(out), out)
	}
	for i := 1; i <= 3; i++ {
		smp := out[i]
		want := 10 + float64(i)*2 // linear between 10 and 18
		if !smp.Filled || smp.T != int64(i) || math.Abs(smp.V-want) > 1e-9 {
			t.Errorf("fill %d = %+v, want t=%d v=%v filled", i, smp, i, want)
		}
	}
	if st := s.Stats(); st.Filled != 3 || st.GapSeconds != 0 {
		t.Errorf("stats = %v, want 3 filled", st)
	}
}

func TestLongGapMarkedMissing(t *testing.T) {
	s := NewSanitizer(Config{ReorderWindow: 1, MaxFillGap: 5})
	var out []Sample
	out = append(out, s.Push(0, 10)...)
	out = append(out, s.Push(100, 20)...)
	out = append(out, s.Flush(200)...)
	if len(out) != 2 {
		t.Fatalf("long gap was filled: %d samples", len(out))
	}
	if out[1].GapBefore != 99 {
		t.Errorf("GapBefore = %d, want 99", out[1].GapBefore)
	}
	if st := s.Stats(); st.GapSeconds != 99 || st.LongGaps != 1 || st.Filled != 0 {
		t.Errorf("stats = %v, want 99 gap seconds in 1 long gap", st)
	}
}

func TestClampEngagesAfterWarmup(t *testing.T) {
	s := NewSanitizer(Config{ReorderWindow: 1, ClampSigma: 10, ClampMinSamples: 64})
	for i := 0; i < 100; i++ {
		s.Push(int64(i), 50+float64(i%7)) // mean ~53, sd ~2
	}
	out := s.Push(100, 1e12)
	out = append(out, s.Flush(200)...)
	var last Sample
	for _, smp := range out {
		if smp.T == 100 {
			last = smp
		}
	}
	if last.T != 100 {
		t.Fatal("clamped sample not released")
	}
	if last.V > 1e3 {
		t.Errorf("corrupted magnitude passed through: %v", last.V)
	}
	if st := s.Stats(); st.Clamped != 1 {
		t.Errorf("stats = %v, want 1 clamp", st)
	}
}

func TestClampLeavesFaultSignaturesAlone(t *testing.T) {
	// A fault step of a few sigma must pass untouched — the clamp only
	// guards against absurd corruption, not the signal FChain detects.
	s := NewSanitizer(Config{ReorderWindow: 1})
	for i := 0; i < 200; i++ {
		s.Push(int64(i), 50+10*math.Sin(float64(i)/10))
	}
	out := s.Push(200, 95) // a large but plausible fault jump
	out = append(out, s.Flush(300)...)
	for _, smp := range out {
		if smp.T == 200 && smp.V != 95 {
			t.Errorf("fault signature clamped: %v", smp.V)
		}
	}
	if st := s.Stats(); st.Clamped != 0 {
		t.Errorf("stats = %v, want no clamps", st)
	}
}

func TestScoreDegradesWithDirt(t *testing.T) {
	clean := Stats{Accepted: 100}
	if clean.Score() != 1 {
		t.Errorf("clean score = %v, want 1", clean.Score())
	}
	dirty := Stats{Accepted: 100, DroppedInvalid: 20, GapSeconds: 30}
	if s := dirty.Score(); s >= 1 || s <= 0 {
		t.Errorf("dirty score = %v, want in (0,1)", s)
	}
	if (Stats{}).Score() != 1 {
		t.Errorf("empty stream score = %v, want 1", (Stats{}).Score())
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Accepted: 1, DroppedLate: 2, Filled: 3}
	a.Merge(Stats{Accepted: 10, Duplicates: 5, GapSeconds: 7, LongGaps: 1})
	if a.Accepted != 11 || a.DroppedLate != 2 || a.Duplicates != 5 || a.Filled != 3 || a.GapSeconds != 7 || a.LongGaps != 1 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestCorruptDeterministic(t *testing.T) {
	in := seq(0, 500, func(i int) float64 { return float64(i % 13) })
	cfg := CorruptConfig{Seed: 7, DropRate: 0.1, DupRate: 0.05, NaNRate: 0.02, SpikeRate: 0.02, JitterMax: 3}
	a := Corrupt(in, cfg)
	b := Corrupt(in, cfg)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		av, bv := a[i], b[i]
		if av.T != bv.T || (av.V != bv.V && !(math.IsNaN(av.V) && math.IsNaN(bv.V))) {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, av, bv)
		}
	}
}

func TestCorruptedStreamSanitizes(t *testing.T) {
	// End to end: a heavily corrupted stream comes out time-ordered,
	// finite, and dense up to long gaps.
	in := seq(0, 1000, func(i int) float64 { return 50 + float64(i%17) })
	corrupted := Corrupt(in, CorruptConfig{
		Seed: 3, DropRate: 0.05, DupRate: 0.05, NaNRate: 0.03, SpikeRate: 0.02, JitterMax: 4,
	})
	s := NewSanitizer(Config{ReorderWindow: 5, MaxFillGap: 10})
	var out []Sample
	for _, smp := range corrupted {
		out = append(out, s.Push(smp.T, smp.V)...)
	}
	out = append(out, s.Flush(2000)...)
	last := int64(-1)
	for _, smp := range out {
		if math.IsNaN(smp.V) || math.IsInf(smp.V, 0) {
			t.Fatalf("non-finite value released at t=%d", smp.T)
		}
		if smp.T <= last && smp.GapBefore == 0 {
			t.Fatalf("out of order: t=%d after %d", smp.T, last)
		}
		if smp.T != last+1 && last >= 0 && smp.GapBefore == 0 {
			t.Fatalf("unmarked gap: t=%d after %d", smp.T, last)
		}
		last = smp.T
	}
	st := s.Stats()
	if st.Accepted == 0 || st.DroppedInvalid == 0 || st.Duplicates == 0 {
		t.Errorf("corruption not reflected in stats: %v", st)
	}
	if sc := st.Score(); sc >= 1 || sc < 0.5 {
		t.Errorf("score = %v, want degraded but reasonable", sc)
	}
}
