package ingest

import (
	"math"
	"math/rand"
)

// CorruptConfig parameterizes the seeded trace corruptor used by the chaos
// ingest tests: it degrades a clean scenario trace the way a real
// deployment's collection path does, so tests can assert that localization
// degrades gracefully under dirty data instead of silently pinpointing the
// wrong culprit with full confidence.
type CorruptConfig struct {
	// Seed makes the corruption deterministic.
	Seed int64
	// DropRate is the probability a sample is silently lost.
	DropRate float64
	// DupRate is the probability a sample is delivered twice.
	DupRate float64
	// NaNRate is the probability a sample's value is replaced by NaN.
	NaNRate float64
	// SpikeRate is the probability a sample's value is replaced by an
	// absurd corrupted magnitude (value × SpikeScale).
	SpikeRate float64
	// SpikeScale multiplies spiked values (default 1e9).
	SpikeScale float64
	// JitterMax delays a sample by up to JitterMax positions in the
	// delivery order, producing bounded out-of-order arrival (0 disables).
	JitterMax int
}

// Corrupt applies the configured degradation to a clean, time-ordered
// trace, returning the corrupted delivery order. The input is not
// modified.
func Corrupt(samples []Sample, cfg CorruptConfig) []Sample {
	rng := rand.New(rand.NewSource(cfg.Seed))
	scale := cfg.SpikeScale
	if scale == 0 {
		scale = 1e9
	}
	out := make([]Sample, 0, len(samples))
	for _, s := range samples {
		if rng.Float64() < cfg.DropRate {
			continue
		}
		switch {
		case rng.Float64() < cfg.NaNRate:
			s.V = math.NaN()
		case rng.Float64() < cfg.SpikeRate:
			s.V *= scale
		}
		out = append(out, s)
		if rng.Float64() < cfg.DupRate {
			out = append(out, s)
		}
	}
	if cfg.JitterMax > 0 {
		// Bounded shuffle: swap each sample with one up to JitterMax
		// positions ahead, yielding slightly out-of-order delivery without
		// unbounded displacement.
		for i := range out {
			j := i + rng.Intn(cfg.JitterMax+1)
			if j < len(out) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
