// Package ingest implements FChain's resilient metric-ingestion layer: a
// per-(component, metric) sanitizer that sits in front of the online
// Markov model and turns a dirty real-world monitoring stream into the
// clean, dense, time-ordered 1 Hz stream the analysis pipeline assumes.
//
// Real cloud metric streams are incomplete and noisy — collectors restart,
// UDP exports drop or reorder samples, broken agents emit NaN or absurd
// magnitudes, and clocks jump. FChain's abnormality test rests entirely on
// the learned normal-fluctuation model, so feeding it corrupted data does
// not merely degrade accuracy: it teaches the model wrong transitions and
// shifts ring indices so that analysis windows silently cover the wrong
// seconds. The sanitizer therefore
//
//   - rejects non-finite (NaN/±Inf) values;
//   - clamps magnitude outliers far beyond anything the stream has shown
//     (guarding against corrupted exports without suppressing genuine
//     fault signatures, which stay well inside the generous bound);
//   - buffers and reorders slightly out-of-order samples within a bounded
//     reorder window, dropping samples that arrive later than that;
//   - deduplicates repeated timestamps;
//   - detects dropped-sample gaps, fills short gaps by linear
//     interpolation, and marks long gaps as missing so downstream stages
//     skip them instead of hallucinating over a dense-index misalignment.
//
// Every decision is counted in Stats, which downstream propagates into
// per-component data-quality annotations on localization results.
package ingest

import (
	"fmt"
	"math"
	"sort"
)

// Default sanitizer parameters.
const (
	// DefaultReorderWindow is how many seconds a sample may arrive out of
	// order and still be reinserted at its true position.
	DefaultReorderWindow = 5
	// DefaultMaxFillGap is the largest dropped-sample gap (seconds) that is
	// repaired by interpolation; longer gaps are marked missing.
	DefaultMaxFillGap = 10
	// DefaultClampSigma bounds accepted values to within this many standard
	// deviations of the stream's running mean. It is deliberately generous:
	// fault manifestations (the signal FChain exists to detect) must pass
	// untouched, while corrupted exports (1e18 spikes) must not reach the
	// model.
	DefaultClampSigma = 16
	// DefaultClampMinSamples is how many samples the running statistics
	// need before clamping engages.
	DefaultClampMinSamples = 64
)

// Config controls one sanitizer.
type Config struct {
	// ReorderWindow is the out-of-order tolerance in seconds (default 5).
	// Zero keeps the default; negative disables reordering (samples must
	// arrive in order or are dropped).
	ReorderWindow int
	// MaxFillGap is the largest gap (missing seconds) repaired by linear
	// interpolation (default 10). Longer gaps are marked missing.
	MaxFillGap int
	// ClampSigma bounds values to mean ± ClampSigma·std of the stream's
	// running statistics (default 16). Negative disables clamping.
	ClampSigma float64
	// ClampMinSamples is the number of observations required before the
	// clamp engages (default 64).
	ClampMinSamples int
}

func (c Config) withDefaults() Config {
	if c.ReorderWindow == 0 {
		c.ReorderWindow = DefaultReorderWindow
	}
	if c.ReorderWindow < 0 {
		c.ReorderWindow = 0
	}
	if c.MaxFillGap == 0 {
		c.MaxFillGap = DefaultMaxFillGap
	}
	if c.MaxFillGap < 0 {
		c.MaxFillGap = 0
	}
	if c.ClampSigma == 0 {
		c.ClampSigma = DefaultClampSigma
	}
	if c.ClampMinSamples <= 0 {
		c.ClampMinSamples = DefaultClampMinSamples
	}
	return c
}

// Sample is one sanitized sample released by the sanitizer.
type Sample struct {
	T int64
	V float64
	// Filled marks a sample synthesized by short-gap interpolation rather
	// than observed.
	Filled bool
	// GapBefore, when positive, is the length (seconds) of an unfilled gap
	// immediately preceding this sample: the stream was missing for that
	// long and downstream must treat the region as unknown rather than
	// contiguous.
	GapBefore int64
}

// Stats counts every data-quality decision a sanitizer has made. All
// counters are cumulative over the stream's lifetime.
type Stats struct {
	// Accepted counts samples admitted into the stream (including clamped
	// and reordered ones).
	Accepted uint64 `json:"accepted,omitempty"`
	// DroppedInvalid counts rejected NaN/±Inf values.
	DroppedInvalid uint64 `json:"dropped_invalid,omitempty"`
	// DroppedLate counts samples that arrived beyond the reorder window
	// (their position had already been released).
	DroppedLate uint64 `json:"dropped_late,omitempty"`
	// Duplicates counts samples dropped for repeating an already-seen
	// timestamp.
	Duplicates uint64 `json:"duplicates,omitempty"`
	// Reordered counts samples that arrived out of order but within the
	// reorder window and were reinserted at their true position.
	Reordered uint64 `json:"reordered,omitempty"`
	// Clamped counts samples whose magnitude was clamped to the plausible
	// bound.
	Clamped uint64 `json:"clamped,omitempty"`
	// Filled counts samples synthesized by short-gap interpolation.
	Filled uint64 `json:"filled,omitempty"`
	// GapSeconds accumulates the lengths of long (unfilled) gaps.
	GapSeconds uint64 `json:"gap_seconds,omitempty"`
	// LongGaps counts the long gaps themselves.
	LongGaps uint64 `json:"long_gaps,omitempty"`
}

// Dropped returns the total number of samples the sanitizer discarded.
func (s Stats) Dropped() uint64 {
	return s.DroppedInvalid + s.DroppedLate + s.Duplicates
}

// Merge accumulates other into s.
func (s *Stats) Merge(other Stats) {
	s.Accepted += other.Accepted
	s.DroppedInvalid += other.DroppedInvalid
	s.DroppedLate += other.DroppedLate
	s.Duplicates += other.Duplicates
	s.Reordered += other.Reordered
	s.Clamped += other.Clamped
	s.Filled += other.Filled
	s.GapSeconds += other.GapSeconds
	s.LongGaps += other.LongGaps
}

// Score condenses the counters into a confidence score in [0, 1]: the
// fraction of the stream that was clean. 1 means pristine; every dropped,
// clamped, synthesized, or missing second lowers it.
func (s Stats) Score() float64 {
	clean := float64(s.Accepted) - float64(s.Clamped)
	if clean < 0 {
		clean = 0
	}
	dirty := float64(s.Dropped() + s.Clamped + s.Filled + s.GapSeconds)
	total := clean + dirty
	if total == 0 {
		return 1
	}
	return clean / total
}

// String renders a compact human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf("quality=%.3f accepted=%d dropped=%d reordered=%d clamped=%d filled=%d gap_seconds=%d",
		s.Score(), s.Accepted, s.Dropped(), s.Reordered, s.Clamped, s.Filled, s.GapSeconds)
}

// Sanitizer cleans one metric stream. It is not safe for concurrent use;
// FChain runs one sanitizer per (component, metric) pair inside a single
// collection goroutine.
type Sanitizer struct {
	cfg Config

	pending []Sample // buffered samples, sorted by time
	maxSeen int64    // newest timestamp ever admitted to the buffer
	hasSeen bool

	lastOut int64 // timestamp of the last released sample
	lastVal float64
	hasOut  bool

	// Welford running statistics over accepted raw values, for clamping.
	n    uint64
	mean float64
	m2   float64

	stats Stats
}

// NewSanitizer returns a sanitizer with the given configuration (zero
// values take defaults).
func NewSanitizer(cfg Config) *Sanitizer {
	return &Sanitizer{cfg: cfg.withDefaults()}
}

// Stats returns the cumulative data-quality counters.
func (s *Sanitizer) Stats() Stats { return s.stats }

// Pending returns how many samples are buffered awaiting release.
func (s *Sanitizer) Pending() int { return len(s.pending) }

// Push feeds one raw sample and returns the samples it releases, oldest
// first: every buffered sample older than the reorder window behind the
// newest timestamp seen, with short gaps filled and long gaps marked.
func (s *Sanitizer) Push(t int64, v float64) []Sample {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		s.stats.DroppedInvalid++
		return nil
	}
	if s.hasOut && t <= s.lastOut {
		// The stream has already been released past this timestamp.
		if t == s.lastOut {
			s.stats.Duplicates++
		} else {
			s.stats.DroppedLate++
		}
		return nil
	}
	v = s.clamp(v)
	if !s.insert(t, v) {
		return nil
	}
	s.observeValue(v)
	s.stats.Accepted++
	if s.hasSeen && t < s.maxSeen {
		s.stats.Reordered++
	}
	if !s.hasSeen || t > s.maxSeen {
		s.maxSeen, s.hasSeen = t, true
	}
	return s.release(s.maxSeen - int64(s.cfg.ReorderWindow))
}

// Flush releases every buffered sample with timestamp ≤ upTo regardless of
// the reorder window; FChain calls it with the violation time tv before
// analyzing, so the look-back window sees everything collected.
func (s *Sanitizer) Flush(upTo int64) []Sample {
	return s.release(upTo)
}

// clamp bounds v to the plausible range learned from the stream.
func (s *Sanitizer) clamp(v float64) float64 {
	if s.cfg.ClampSigma < 0 || s.n < uint64(s.cfg.ClampMinSamples) {
		return v
	}
	sd := math.Sqrt(s.m2 / float64(s.n))
	if sd == 0 || math.IsNaN(sd) {
		return v
	}
	lo := s.mean - s.cfg.ClampSigma*sd
	hi := s.mean + s.cfg.ClampSigma*sd
	switch {
	case v < lo:
		s.stats.Clamped++
		return lo
	case v > hi:
		s.stats.Clamped++
		return hi
	}
	return v
}

// observeValue updates the running statistics with an accepted value.
func (s *Sanitizer) observeValue(v float64) {
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// insert places (t, v) into the pending buffer in time order; duplicate
// buffered timestamps are dropped (first sample wins).
func (s *Sanitizer) insert(t int64, v float64) bool {
	i := sort.Search(len(s.pending), func(i int) bool { return s.pending[i].T >= t })
	if i < len(s.pending) && s.pending[i].T == t {
		s.stats.Duplicates++
		return false
	}
	s.pending = append(s.pending, Sample{})
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = Sample{T: t, V: v}
	return true
}

// release pops every pending sample with timestamp ≤ upTo, repairing or
// marking the gaps between consecutive released samples.
func (s *Sanitizer) release(upTo int64) []Sample {
	n := 0
	for n < len(s.pending) && s.pending[n].T <= upTo {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]Sample, 0, n)
	for _, smp := range s.pending[:n] {
		out = s.emit(out, smp)
	}
	copy(s.pending, s.pending[n:])
	s.pending = s.pending[:len(s.pending)-n]
	return out
}

// emit appends smp to out, preceded by gap repair or a gap marker.
func (s *Sanitizer) emit(out []Sample, smp Sample) []Sample {
	if s.hasOut {
		gap := smp.T - s.lastOut - 1
		switch {
		case gap <= 0:
			// contiguous (insert guarantees strictly increasing times)
		case gap <= int64(s.cfg.MaxFillGap):
			// Short gap: linear interpolation between the bracketing
			// samples keeps the dense 1 Hz stream contiguous without
			// inventing dynamics.
			step := (smp.V - s.lastVal) / float64(gap+1)
			for i := int64(1); i <= gap; i++ {
				out = append(out, Sample{
					T:      s.lastOut + i,
					V:      s.lastVal + step*float64(i),
					Filled: true,
				})
				s.stats.Filled++
			}
		default:
			// Long gap: the stream is simply unknown here. Mark it so the
			// consumer can sever the dense history instead of pretending
			// the two sides are adjacent seconds.
			smp.GapBefore = gap
			s.stats.GapSeconds += uint64(gap)
			s.stats.LongGaps++
		}
	}
	s.lastOut, s.lastVal, s.hasOut = smp.T, smp.V, true
	return append(out, smp)
}
